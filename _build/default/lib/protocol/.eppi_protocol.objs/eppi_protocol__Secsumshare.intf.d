lib/protocol/secsumshare.mli: Eppi_prelude Eppi_simnet Modarith Rng
