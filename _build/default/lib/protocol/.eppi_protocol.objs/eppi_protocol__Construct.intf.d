lib/protocol/construct.mli: Bitmatrix Countbelow Eppi Eppi_circuit Eppi_mpc Eppi_prelude Eppi_simnet Modarith Rng Secsumshare
