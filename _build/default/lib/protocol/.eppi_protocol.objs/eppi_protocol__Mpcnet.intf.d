lib/protocol/mpcnet.mli: Circuit Eppi_circuit Eppi_prelude Eppi_simnet Rng
