lib/protocol/countbelow.ml: Array Eppi Eppi_circuit Eppi_mpc Eppi_prelude Eppi_sfdl Eppi_simnet List Modarith Mpcnet Printf
