lib/protocol/mpcnet.ml: Array Circuit Eppi_circuit Eppi_mpc Eppi_prelude Eppi_simnet Rng
