lib/protocol/construct.ml: Array Bitmatrix Countbelow Eppi Eppi_circuit Eppi_mpc Eppi_prelude Eppi_sfdl Eppi_simnet Float Fun List Modarith Secsumshare
