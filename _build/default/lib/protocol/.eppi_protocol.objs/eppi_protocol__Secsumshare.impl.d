lib/protocol/secsumshare.ml: Array Eppi_prelude Eppi_secretshare Eppi_simnet Hashtbl Modarith Printf Rng
