lib/protocol/countbelow.mli: Eppi Eppi_circuit Eppi_mpc Eppi_prelude Eppi_simnet Modarith Rng
