lib/protocol/purempc.ml: Array Eppi Eppi_circuit Eppi_mpc
