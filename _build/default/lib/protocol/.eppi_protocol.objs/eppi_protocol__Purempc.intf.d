lib/protocol/purempc.mli: Eppi_circuit Eppi_mpc Eppi_prelude Rng
