(** GMW executed over the simulated network, round by round.

    {!Eppi_mpc.Gmw.execute} evaluates the protocol in-process and reports
    closed-form communication statistics; the Fig. 6 experiments then price
    those with the {!Eppi_mpc.Cost} model.  This module instead {i runs} the
    protocol on {!Eppi_simnet.Simnet}: each party is a network node holding
    XOR shares, every AND layer is a broadcast round of masked bits, and the
    execution time {i emerges} from the latency/bandwidth/compute model
    rather than being estimated.  The test suite uses it to validate both
    the functional agreement with the in-process engine and the cost
    model's round structure (measured rounds = AND depth + output round).

    Beaver triples are pre-distributed by the dealer before time zero, as
    in the in-process engine (the offline phase is out of scope). *)

open Eppi_prelude
open Eppi_circuit

type result = {
  outputs : bool array;
  rounds : int;  (** Broadcast rounds: one per AND layer plus the output round. *)
  net : Eppi_simnet.Simnet.metrics;
}

val execute :
  ?config:Eppi_simnet.Simnet.config ->
  Rng.t ->
  Circuit.t ->
  inputs:bool array array ->
  result
(** @raise Invalid_argument on missing input bits or fewer than 2 parties. *)
