module Circuit = Eppi_circuit.Circuit
module B = Circuit.Builder
module Word = Eppi_circuit.Word
module Fp = Eppi_circuit.Fixedpoint
module Gmw = Eppi_mpc.Gmw
module Cost = Eppi_mpc.Cost

let frac_bits = 12
let width = 24

let check_params ~m ~epsilon ~gamma =
  if m < 2 then invalid_arg "Purempc: need at least 2 providers";
  if epsilon <= 0.0 || epsilon >= 1.0 then invalid_arg "Purempc: epsilon must be in (0, 1)";
  if gamma <= 0.0 || gamma >= 1.0 then invalid_arg "Purempc: gamma must be in (0, 1)"

let beta_circuit ~m ~epsilon ~gamma =
  check_params ~m ~epsilon ~gamma;
  let b = B.create ~n_parties:m () in
  let bits = Array.init m (fun party -> B.input b ~party) in
  (* count = sigma * m, an exact integer. *)
  let count = Word.popcount b bits in
  let one = Fp.constant b ~width ~frac_bits 1.0 in
  (* sigma = count / m in Q(f). *)
  let m_word = Word.const_int b ~width:(Word.bits_for m) m in
  let sigma = Fp.div_by_int b (Fp.of_int_word b count ~frac_bits) m_word ~width in
  (* Eq. 3 pipeline: beta_b = 1 / ((1/sigma - 1) * (1/eps - 1)).
     (1/eps - 1) is public and folds into a constant. *)
  let inv_sigma = Fp.div b one sigma ~width in
  let a = Fp.sub b inv_sigma one in
  let eps_term = Fp.constant b ~width ~frac_bits ((1.0 /. epsilon) -. 1.0) in
  let denom = Fp.mul b a eps_term ~width in
  let beta_b = Fp.div b one denom ~width in
  (* Eq. 5: G = ln(1/(1-gamma)) / ((1-sigma) * m); (1-sigma)*m = m - count. *)
  let k = Fp.constant b ~width ~frac_bits (log (1.0 /. (1.0 -. gamma))) in
  let negatives = Word.sub b (Word.const_int b ~width:(Word.bits_for m) m) count in
  let g = Fp.div_by_int b k negatives ~width in
  let g2 = Fp.mul b g g ~width in
  let bg2 = Fp.double b (Fp.mul b beta_b g ~width) in
  let root = Fp.sqrt b (Fp.add b g2 bg2) in
  let beta_c = Fp.add b (Fp.add b beta_b g) root in
  let common = Fp.ge b beta_c one in
  B.output b common;
  Fp.output b { beta_c with word = Array.sub beta_c.word 0 (min width (Array.length beta_c.word)) };
  B.finish b

type execution = {
  common : bool;
  beta : float;
  circuit_stats : Circuit.stats;
  comm : Gmw.comm_stats;
  time : float;
}

let run ?(network = Cost.lan) rng ~bits ~epsilon ~gamma =
  let m = Array.length bits in
  let circuit = beta_circuit ~m ~epsilon ~gamma in
  let inputs = Array.map (fun bit -> [| bit |]) bits in
  let result = Gmw.execute rng circuit ~inputs in
  let stats = Circuit.stats circuit in
  let outputs = Array.length (Circuit.outputs circuit) in
  let beta_bits = Array.sub result.outputs 1 (Array.length result.outputs - 1) in
  {
    common = result.outputs.(0);
    beta = Fp.to_float beta_bits ~frac_bits;
    circuit_stats = stats;
    comm = result.comm;
    time = Cost.estimate ~network ~parties:m ~outputs stats;
  }

let stats_for ~m ~identities ~epsilon ~gamma =
  if identities < 1 then invalid_arg "Purempc.stats_for: need at least one identity";
  let s = Circuit.stats (beta_circuit ~m ~epsilon ~gamma) in
  {
    s with
    size = s.size * identities;
    and_gates = s.and_gates * identities;
    xor_gates = s.xor_gates * identities;
    not_gates = s.not_gates * identities;
    inputs = s.inputs * identities;
  }

let estimate_time ?(network = Cost.lan) ~m ~identities ~epsilon ~gamma () =
  let stats = stats_for ~m ~identities ~epsilon ~gamma in
  (* One common bit and one beta word per identity. *)
  Cost.estimate ~network ~parties:m ~outputs:((1 + width) * identities) stats

let reference_beta ~m ~count ~epsilon ~gamma =
  Eppi.Policy.beta (Eppi.Policy.Chernoff gamma)
    ~sigma:(float_of_int count /. float_of_int m)
    ~epsilon ~m
