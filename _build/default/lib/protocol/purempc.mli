(** The Pure-MPC baseline (paper Section V-B).

    The comparison point for Fig. 6: instead of reducing the secure part to
    c coordinators via SecSumShare, the pure approach puts {i all m
    providers} into the generic MPC and evaluates the entire β-calculation
    flow (Formula 8) inside the circuit — popcount of the m private bits,
    the Eq. 3 reciprocal pipeline and the Eq. 5 Chernoff correction with its
    square root, in Q(12) fixed-point arithmetic (standing in for
    Fairplay-era secure floating point; see DESIGN.md).  The circuit is
    built per identity; multi-identity workloads replicate it, which is the
    superlinear cost the paper's design avoids. *)

open Eppi_prelude

val frac_bits : int
(** Fixed-point precision (12). *)

val width : int
(** Fixed-point word width (24). *)

val beta_circuit : m:int -> epsilon:float -> gamma:float -> Eppi_circuit.Circuit.t
(** Single-identity circuit: m parties with one input bit each; outputs the
    common flag followed by β_c in Q(12), LSB first.
    @raise Invalid_argument for m < 2 or parameters outside (0, 1). *)

type execution = {
  common : bool;
  beta : float;  (** Decoded fixed-point β_c, saturated at the word range. *)
  circuit_stats : Eppi_circuit.Circuit.stats;
  comm : Eppi_mpc.Gmw.comm_stats;
  time : float;
}

val run :
  ?network:Eppi_mpc.Cost.network ->
  Rng.t ->
  bits:bool array ->
  epsilon:float ->
  gamma:float ->
  execution
(** Execute the protocol for one identity with the given membership bits
    (length = m). *)

val stats_for : m:int -> identities:int -> epsilon:float -> gamma:float -> Eppi_circuit.Circuit.stats
(** Circuit shape for a multi-identity workload: per-identity stats scaled
    by the identity count (identities are independent, so sizes add and the
    AND-depth stays per-identity). *)

val estimate_time :
  ?network:Eppi_mpc.Cost.network ->
  m:int ->
  identities:int ->
  epsilon:float ->
  gamma:float ->
  unit ->
  float
(** Simulated execution time of the pure-MPC construction for a workload. *)

val reference_beta : m:int -> count:int -> epsilon:float -> gamma:float -> float
(** The same pipeline in floats (= the Chernoff policy), for validation. *)
