(** Deterministic discrete-event network simulator.

    Stands in for the paper's Emulab testbed and Netty transport: parties are
    nodes exchanging typed messages over links with a latency + bandwidth
    model, and each node owns a busy clock so local computation serializes
    with message handling.  The protocol experiments (Fig. 6) read their
    "execution time" from {!completion_time}: the instant the last node
    finishes its last event — the same start-to-end metric the paper uses.

    Determinism: event ties break by insertion order, and any randomness a
    protocol needs must come from its own seeded {!Eppi_prelude.Rng}. *)

type node_id = int

type 'msg t

type config = {
  latency : float;  (** Per-message propagation delay, seconds. *)
  bandwidth : float;  (** Bytes per second. *)
  drop_probability : float;  (** Uniform message loss rate (fault injection). *)
  seed : int;  (** Seed for loss draws only. *)
}

val default_config : config
(** LAN-like: 0.5 ms latency, 100 MB/s, no loss. *)

val create : ?config:config -> nodes:int -> unit -> 'msg t
val nodes : 'msg t -> int
val now : 'msg t -> float

val on_receive : 'msg t -> node_id -> ('msg t -> src:node_id -> 'msg -> unit) -> unit
(** Install the message handler of a node (replaces any previous one). *)

val send : 'msg t -> src:node_id -> dst:node_id -> size:int -> 'msg -> unit
(** Enqueue a message of [size] bytes; it is delivered at
    [now + latency + size/bandwidth], queued behind the destination's busy
    clock.  Self-sends are delivered with zero network delay. *)

val broadcast : 'msg t -> src:node_id -> size:int -> 'msg -> unit
(** Send to every node except [src]. *)

val at : 'msg t -> delay:float -> node_id -> ('msg t -> unit) -> unit
(** Schedule a local timer callback on a node. *)

val work : 'msg t -> node_id -> float -> unit
(** Charge computation time to a node; subsequent events on that node are
    delayed accordingly.  Call from within a handler. *)

val crash : 'msg t -> node_id -> unit
(** From now on the node silently drops everything addressed to it. *)

val is_crashed : 'msg t -> node_id -> bool

val run : 'msg t -> unit
(** Process events until quiescence.
    @raise Failure if the event count exceeds a safety bound (runaway
    protocol). *)

(** Traffic and timing accounting. *)
type metrics = {
  messages_sent : int;
  messages_delivered : int;
  messages_dropped : int;
  bytes_sent : int;
  completion_time : float;  (** When the last node went idle. *)
}

val metrics : 'msg t -> metrics
val node_busy_time : 'msg t -> node_id -> float
(** Total computation time charged to the node via {!work}. *)
