(** Binary min-heap keyed by (float, int).

    The integer component is a monotone sequence number, so events with equal
    timestamps pop in insertion order — this is what keeps the discrete-event
    simulator deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> key:float -> 'a -> unit
(** Insertion order among equal keys is preserved on pop. *)

val pop : 'a t -> (float * 'a) option
val peek_key : 'a t -> float option
