lib/simnet/simnet.mli:
