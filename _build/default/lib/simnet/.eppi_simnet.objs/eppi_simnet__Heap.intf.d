lib/simnet/heap.mli:
