lib/simnet/simnet.ml: Array Eppi_prelude Heap Rng
