(** Distribution sampling on top of {!Rng}.

    The binomial sampler is the workhorse of the effectiveness experiments:
    the number of false positives an identity receives during randomized
    publication is Binomial(m(1-sigma), beta), and sweeps draw it millions of
    times.  Small-mean draws use exact sequential inversion; large-mean draws
    use a continuity-corrected normal approximation, which is statistically
    indistinguishable at the scales the experiments use. *)

val binomial : Rng.t -> n:int -> p:float -> int
(** [binomial rng ~n ~p] draws the number of successes in [n] independent
    Bernoulli([p]) trials.  Always in [0, n]. *)

val binomial_exact : Rng.t -> n:int -> p:float -> int
(** Exact O(n) flip-by-flip draw; reference implementation used by tests. *)

val geometric : Rng.t -> p:float -> int
(** [geometric rng ~p] is the number of failures before the first success,
    for success probability [p] in (0, 1]. *)

val poisson : Rng.t -> lambda:float -> int
(** Poisson draw (Knuth's method for small lambda, normal approximation for
    large lambda). *)

(** Zipf distribution over ranks [1..n] with exponent [s], using a
    precomputed CDF table for O(log n) sampling. *)
module Zipf : sig
  type t

  val create : n:int -> s:float -> t
  val sample : t -> Rng.t -> int
  (** Rank in [1, n]; rank 1 is the most probable. *)

  val prob : t -> int -> float
  (** [prob t rank] is the probability mass of [rank]. *)
end
