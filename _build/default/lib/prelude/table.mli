(** Aligned text tables and CSV rendering for experiment output.

    The benchmark harness prints each reproduced figure as a table whose rows
    are x-axis points and whose columns are the compared systems, matching the
    series the paper plots. *)

type t

val create : header:string list -> t
val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val cell_float : float -> string
(** Render a float with 4 significant decimals, trimming noise. *)

val cell_int : int -> string

val to_string : t -> string
(** Column-aligned rendering with a header separator line. *)

val to_csv : t -> string
val print : t -> unit
(** [to_string] to stdout followed by a newline. *)
