let binomial_exact rng ~n ~p =
  let count = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli rng p then incr count
  done;
  !count

(* Sequential CDF inversion.  Valid while the pmf stays in floating range,
   i.e. while n * min(p, 1-p) is small. *)
let binomial_inversion rng ~n ~p =
  let q = 1.0 -. p in
  let u = ref (Rng.float rng 1.0) in
  let pmf = ref (q ** float_of_int n) in
  let k = ref 0 in
  (* Invariant: !pmf = P(X = !k); stop when the remaining mass is consumed. *)
  while !u >= !pmf && !k < n do
    u := !u -. !pmf;
    incr k;
    pmf := !pmf *. p /. q *. (float_of_int (n - !k + 1) /. float_of_int !k)
  done;
  !k

let normal_draw rng =
  (* Box-Muller; one value per call is fine at our scales. *)
  let u1 = max 1e-300 (Rng.float rng 1.0) in
  let u2 = Rng.float rng 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let rec binomial rng ~n ~p =
  if n < 0 then invalid_arg "Sampling.binomial: negative n";
  if n = 0 || p <= 0.0 then 0
  else if p >= 1.0 then n
  else if p > 0.5 then n - binomial rng ~n ~p:(1.0 -. p)
  else if float_of_int n *. p <= 30.0 then binomial_inversion rng ~n ~p
  else begin
    let mean = float_of_int n *. p in
    let sd = sqrt (mean *. (1.0 -. p)) in
    let x = int_of_float (Float.round (mean +. (sd *. normal_draw rng))) in
    if x < 0 then 0 else if x > n then n else x
  end

let geometric rng ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Sampling.geometric";
  if p = 1.0 then 0
  else
    let u = max 1e-300 (Rng.float rng 1.0) in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let poisson rng ~lambda =
  if lambda < 0.0 then invalid_arg "Sampling.poisson";
  if lambda = 0.0 then 0
  else if lambda < 30.0 then begin
    let l = exp (-.lambda) in
    let k = ref 0 in
    let p = ref 1.0 in
    let continue = ref true in
    while !continue do
      p := !p *. Rng.float rng 1.0;
      if !p <= l then continue := false else incr k
    done;
    !k
  end
  else
    let x = int_of_float (Float.round (lambda +. (sqrt lambda *. normal_draw rng))) in
    max 0 x

module Zipf = struct
  type t = { n : int; cdf : float array }

  let create ~n ~s =
    if n <= 0 then invalid_arg "Zipf.create: n must be positive";
    let cdf = Array.make n 0.0 in
    let acc = ref 0.0 in
    for rank = 1 to n do
      acc := !acc +. (1.0 /. (float_of_int rank ** s));
      cdf.(rank - 1) <- !acc
    done;
    let total = !acc in
    for i = 0 to n - 1 do
      cdf.(i) <- cdf.(i) /. total
    done;
    { n; cdf }

  let sample t rng =
    let u = Rng.float rng 1.0 in
    (* Least rank whose cumulative mass covers u. *)
    let lo = ref 0 and hi = ref (t.n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo + 1

  let prob t rank =
    if rank < 1 || rank > t.n then invalid_arg "Zipf.prob: rank out of range";
    let below = if rank = 1 then 0.0 else t.cdf.(rank - 2) in
    t.cdf.(rank - 1) -. below
end
