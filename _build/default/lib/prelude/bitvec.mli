(** Packed bit vectors.

    A provider's local membership vector over n owners, and each row/column of
    the index matrices, are bit vectors; at the paper's scale (10,000 providers
    x thousands of identities) packing is what keeps whole-network experiments
    in memory. *)

type t

val create : int -> t
(** [create len] is an all-zero vector of [len] bits. *)

val length : t -> int
val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit
val assign : t -> int -> bool -> unit
val count : t -> int
(** Number of set bits. *)

val copy : t -> t
val equal : t -> t -> bool
val fill : t -> bool -> unit

val union : t -> t -> t
(** Bitwise or; operands must have equal length. *)

val inter : t -> t -> t
(** Bitwise and; operands must have equal length. *)

val diff : t -> t -> t
(** Bits set in the first operand but not the second. *)

val iter_set : (int -> unit) -> t -> unit
(** Iterate the indexes of set bits in increasing order. *)

val to_index_list : t -> int list
val of_index_list : int -> int list -> t
val fold_set : ('a -> int -> 'a) -> 'a -> t -> 'a
val pp : Format.formatter -> t -> unit
