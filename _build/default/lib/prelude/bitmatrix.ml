type t = { rows : int; cols : int; data : Bitvec.t array }

let create ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Bitmatrix.create";
  { rows; cols; data = Array.init rows (fun _ -> Bitvec.create cols) }

let rows t = t.rows
let cols t = t.cols

let get t ~row ~col = Bitvec.get t.data.(row) col
let set t ~row ~col v = Bitvec.assign t.data.(row) col v
let row t i = t.data.(i)
let row_count t i = Bitvec.count t.data.(i)

let col_count t j =
  let acc = ref 0 in
  for i = 0 to t.rows - 1 do
    if Bitvec.get t.data.(i) j then incr acc
  done;
  !acc

let copy t = { t with data = Array.map Bitvec.copy t.data }

let equal a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 Bitvec.equal a.data b.data

let map_rows f t =
  let data =
    Array.mapi
      (fun i r ->
        let r' = f i r in
        if Bitvec.length r' <> t.cols then invalid_arg "Bitmatrix.map_rows: row length changed";
        r')
      t.data
  in
  { t with data }
