(** Descriptive statistics used to aggregate experiment samples. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

val mean : float array -> float
(** Arithmetic mean.  @raise Invalid_argument on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for singletons. *)

val stddev : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [0,1], linear interpolation between order
    statistics.  Does not mutate its argument. *)

val median : float array -> float

val summary : float array -> summary
val pp_summary : Format.formatter -> summary -> unit

(** Fixed-bin histogram over a closed interval. *)
module Histogram : sig
  type t

  val create : lo:float -> hi:float -> bins:int -> t

  val add : t -> float -> unit
  (** Out-of-range values are clamped into the edge bins. *)

  val counts : t -> int array
  val total : t -> int

  val bin_of : t -> float -> int
  (** Index of the bin a value falls into. *)
end
