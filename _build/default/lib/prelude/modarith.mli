(** Arithmetic modulo a small modulus q.

    The SecSumShare protocol works in Z_q where q only needs to exceed the
    largest possible secure sum (the provider count m), so everything fits in
    native ints.  Multiplication guards against overflow by requiring
    q < 2^31. *)

type modulus = private int

val modulus : int -> modulus
(** @raise Invalid_argument unless [2 <= q < 2^31]. *)

val to_int : modulus -> int
val reduce : modulus -> int -> int
(** Canonical representative in [0, q), correct for negative inputs. *)

val add : modulus -> int -> int -> int
val sub : modulus -> int -> int -> int
val mul : modulus -> int -> int -> int
val neg : modulus -> int -> int
val pow : modulus -> int -> int -> int
(** [pow q b e] for [e >= 0], by binary exponentiation. *)

val inv : modulus -> int -> int
(** Multiplicative inverse via the extended Euclidean algorithm.
    @raise Invalid_argument if the argument is not invertible mod q. *)

val is_prime : int -> bool
(** Deterministic trial-division primality test (fine for small q). *)

val next_prime : int -> int
(** Smallest prime strictly greater than the argument. *)
