type modulus = int

let modulus q =
  if q < 2 || q >= 1 lsl 31 then invalid_arg "Modarith.modulus: need 2 <= q < 2^31";
  q

let to_int q = q

let reduce q x =
  let r = x mod q in
  if r < 0 then r + q else r

let add q a b = reduce q (reduce q a + reduce q b)
let sub q a b = reduce q (reduce q a - reduce q b)
let mul q a b = reduce q (reduce q a * reduce q b)
let neg q a = reduce q (-reduce q a)

let pow q b e =
  if e < 0 then invalid_arg "Modarith.pow: negative exponent";
  let rec go b e acc =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul q acc b else acc in
      go (mul q b b) (e lsr 1) acc
    end
  in
  go (reduce q b) e 1

let inv q a =
  let a = reduce q a in
  if a = 0 then invalid_arg "Modarith.inv: zero is not invertible";
  (* Extended Euclid: track x with old_r = a * x (mod q). *)
  let rec go old_r r old_x x =
    if r = 0 then
      if old_r <> 1 then invalid_arg "Modarith.inv: argument not coprime with modulus"
      else reduce q old_x
    else begin
      let quot = old_r / r in
      go r (old_r - (quot * r)) x (old_x - (quot * x))
    end
  in
  go a q 1 0

let is_prime n =
  if n < 2 then false
  else if n < 4 then true
  else if n mod 2 = 0 then false
  else begin
    let rec go d = if d * d > n then true else if n mod d = 0 then false else go (d + 2) in
    go 3
  end

let next_prime n =
  let rec go c = if is_prime c then c else go (c + 1) in
  go (max 2 (n + 1))
