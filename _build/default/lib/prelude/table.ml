type t = { header : string list; mutable rev_rows : string list list }

let create ~header = { header; rev_rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Table.add_row: row width differs from header";
  t.rev_rows <- row :: t.rev_rows

let cell_float x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.4f" x

let cell_int = string_of_int

let rows t = List.rev t.rev_rows

let to_string t =
  let all = t.header :: rows t in
  let ncols = List.length t.header in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row -> List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let buf = Buffer.create 256 in
  let put_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        if i < ncols - 1 then Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  put_row t.header;
  let total = Array.fold_left ( + ) (2 * (ncols - 1)) widths in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter put_row (rows t);
  Buffer.contents buf

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let buf = Buffer.create 256 in
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat "," (List.map csv_escape row));
      Buffer.add_char buf '\n')
    (t.header :: rows t);
  Buffer.contents buf

let print t = print_string (to_string t)
