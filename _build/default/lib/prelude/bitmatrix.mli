(** Packed Boolean matrices.

    The paper's membership matrix M and the published index M' map
    (provider, owner) to a bit.  We store one bit vector per owner row --
    all metrics (false-positive rate, frequency, attack confidence) are
    per-owner row scans. *)

type t

val create : rows:int -> cols:int -> t
(** All-zero matrix; by convention rows index owners, columns providers. *)

val rows : t -> int
val cols : t -> int
val get : t -> row:int -> col:int -> bool
val set : t -> row:int -> col:int -> bool -> unit
val row : t -> int -> Bitvec.t
(** The live row vector (not a copy). *)

val row_count : t -> int -> int
(** Number of set bits in a row. *)

val col_count : t -> int -> int
(** Number of set bits in a column. *)

val copy : t -> t
val equal : t -> t -> bool
val map_rows : (int -> Bitvec.t -> Bitvec.t) -> t -> t
(** Build a new matrix by transforming each row; the transform must preserve
    row length. *)
