(** Deterministic, splittable pseudo-random number generator.

    All randomness in the repository flows through this module so that every
    experiment, protocol run and test is reproducible from a single integer
    seed.  The generator is splitmix64 (Steele, Lea & Flood, OOPSLA'14): a
    64-bit state advanced by a Weyl constant and finalized with a strong
    avalanche mix.  [split] derives an independent child stream, which lets
    concurrent protocol parties draw without interleaving artefacts. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives a child generator whose stream is independent of the
    parent's subsequent draws. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future stream). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  Unbiased via rejection
    sampling.  @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly from the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float t x] draws uniformly from [0, x). *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is true with probability [p] (clamped to [0,1]). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample_without_replacement : t -> k:int -> n:int -> int array
(** [sample_without_replacement t ~k ~n] draws [k] distinct indexes from
    [0, n), in random order.  @raise Invalid_argument if [k > n] or [k < 0]. *)
