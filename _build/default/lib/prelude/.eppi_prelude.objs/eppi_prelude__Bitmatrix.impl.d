lib/prelude/bitmatrix.ml: Array Bitvec
