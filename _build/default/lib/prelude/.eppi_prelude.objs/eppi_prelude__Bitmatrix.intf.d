lib/prelude/bitmatrix.mli: Bitvec
