lib/prelude/modarith.mli:
