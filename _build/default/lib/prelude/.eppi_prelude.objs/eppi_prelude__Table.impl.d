lib/prelude/table.ml: Array Buffer Float List Printf String
