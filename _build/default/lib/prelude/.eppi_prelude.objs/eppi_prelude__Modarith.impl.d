lib/prelude/modarith.ml:
