lib/prelude/rng.mli:
