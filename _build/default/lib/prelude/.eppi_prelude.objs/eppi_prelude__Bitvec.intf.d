lib/prelude/bitvec.mli: Format
