lib/prelude/table.mli:
