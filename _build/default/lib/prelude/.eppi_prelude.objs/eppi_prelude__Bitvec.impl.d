lib/prelude/bitvec.ml: Array Bytes Char Format Lazy List
