lib/prelude/sampling.ml: Array Float Rng
