type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* splitmix64 finalizer: two xor-shift-multiply rounds give full avalanche. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = Int64.logxor (bits64 t) 0xA02184DCF58B5B21L }
let copy t = { state = t.state }

(* Non-negative 62-bit value, safe to treat as an OCaml int. *)
let bits62 t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over [0, 2^62) keeps the draw unbiased. *)
  let range = 1 lsl 62 in
  let rec draw () =
    let v = bits62 t in
    let r = v mod bound in
    if v - r <= range - bound then r else draw ()
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let unit_float t =
  (* 53 random bits scaled into [0, 1). *)
  Int64.to_float (Int64.shift_right_logical (bits64 t) 11) *. 0x1p-53

let float t x = unit_float t *. x
let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else unit_float t < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t ~k ~n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Partial Fisher-Yates: only the first k slots are finalized. *)
  let a = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = int_in t i (n - 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.sub a 0 k
