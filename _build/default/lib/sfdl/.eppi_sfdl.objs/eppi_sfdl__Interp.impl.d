lib/sfdl/interp.ml: Array Ast Compile Eppi_circuit Hashtbl List Parser Printf Result Typecheck
