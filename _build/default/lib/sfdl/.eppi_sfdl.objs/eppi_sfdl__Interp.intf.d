lib/sfdl/interp.mli: Ast Compile
