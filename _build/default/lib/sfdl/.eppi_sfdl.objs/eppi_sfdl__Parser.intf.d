lib/sfdl/parser.mli: Ast
