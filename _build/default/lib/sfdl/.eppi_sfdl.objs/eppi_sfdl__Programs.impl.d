lib/sfdl/programs.ml: Array Buffer Eppi_circuit List Printf String
