lib/sfdl/lexer.mli: Ast
