lib/sfdl/programs.mli:
