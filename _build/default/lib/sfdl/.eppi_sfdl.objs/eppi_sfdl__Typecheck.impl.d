lib/sfdl/typecheck.ml: Ast Hashtbl List Printf Result
