lib/sfdl/typecheck.mli: Ast
