lib/sfdl/compile.mli: Ast Eppi_circuit
