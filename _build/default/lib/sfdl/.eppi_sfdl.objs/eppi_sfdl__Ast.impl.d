lib/sfdl/ast.ml:
