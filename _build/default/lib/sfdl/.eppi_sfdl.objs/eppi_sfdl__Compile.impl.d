lib/sfdl/compile.ml: Array Ast Buffer Eppi_circuit Hashtbl List Parser Printf Result String Typecheck
