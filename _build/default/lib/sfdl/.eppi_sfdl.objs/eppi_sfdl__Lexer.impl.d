lib/sfdl/lexer.ml: Ast List Printf String
