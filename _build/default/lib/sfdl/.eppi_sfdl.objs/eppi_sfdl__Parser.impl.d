lib/sfdl/parser.ml: Array Ast Lexer List Printf
