type token =
  | IDENT of string
  | INT of int
  | KW of string
  | PUNCT of string
  | EOF

type lexeme = { token : token; pos : Ast.position }

exception Error of string * Ast.position

let keywords =
  [ "program"; "const"; "party"; "input"; "output"; "var"; "main"; "for"; "in";
    "if"; "else"; "of"; "uint"; "bool"; "true"; "false" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | KW s -> Printf.sprintf "keyword %S" s
  | PUNCT s -> Printf.sprintf "%S" s
  | EOF -> "end of input"

let tokenize src =
  let len = String.length src in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let out = ref [] in
  let pos () : Ast.position = { line = !line; col = !col } in
  let advance () =
    if !i < len then begin
      if src.[!i] = '\n' then begin
        incr line;
        col := 1
      end
      else incr col;
      incr i
    end
  in
  let peek off = if !i + off < len then Some src.[!i + off] else None in
  let emit tok p = out := { token = tok; pos = p } :: !out in
  while !i < len do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && peek 1 = Some '/' then
      while !i < len && src.[!i] <> '\n' do
        advance ()
      done
    else begin
      let p = pos () in
      if is_ident_start c then begin
        let start = !i in
        while !i < len && is_ident_char src.[!i] do
          advance ()
        done;
        let word = String.sub src start (!i - start) in
        emit (if List.mem word keywords then KW word else IDENT word) p
      end
      else if is_digit c then begin
        let start = !i in
        while !i < len && is_digit src.[!i] do
          advance ()
        done;
        let word = String.sub src start (!i - start) in
        match int_of_string_opt word with
        | Some n -> emit (INT n) p
        | None -> raise (Error (Printf.sprintf "integer literal too large: %s" word, p))
      end
      else begin
        (* Longest-match punctuation. *)
        let two =
          match peek 1 with
          | Some c2 -> Some (Printf.sprintf "%c%c" c c2)
          | None -> None
        in
        let doubles = [ "<="; ">="; "=="; "!="; "&&"; "||"; ".." ] in
        match two with
        | Some d when List.mem d doubles ->
            advance ();
            advance ();
            emit (PUNCT d) p
        | _ ->
            let singles = ";:,()[]{}<>+-*/%&|^!?=" in
            if String.contains singles c then begin
              advance ();
              emit (PUNCT (String.make 1 c)) p
            end
            else raise (Error (Printf.sprintf "unexpected character %C" c, p))
      end
    end
  done;
  emit EOF (pos ());
  List.rev !out
