(* Abstract syntax of the mini secure function definition language (SFDL).

   The language mirrors the shape of FairplayMP's SFDL: a program declares
   parties, typed private inputs owned by parties, public outputs, local
   variables and a main block of statements; the compiler unrolls loops and
   lowers everything to a Boolean circuit.  Two deliberate divergences from
   Fairplay, documented in the manual (docs in compile.mli): addition and
   multiplication grow their result width instead of wrapping, and array
   indexes must be compile-time constants after loop unrolling. *)

type position = { line : int; col : int }

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or
  | Xor
  | Land  (* && *)
  | Lor   (* || *)

type unop = Not | Neg

(* Width expressions are constant expressions; they reuse [expr] and are
   folded by the const evaluator. *)
type ty =
  | Tbool
  | Tuint of expr  (* uint<width> *)
  | Tarray of ty * expr  (* elem[len] *)

and expr = { desc : expr_desc; pos : position }

and expr_desc =
  | Int of int
  | Bool of bool
  | Var of string
  | Index of string * expr
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Cond of expr * expr * expr  (* c ? a : b *)

type lvalue = Lvar of string | Lindex of string * expr

type stmt = { sdesc : stmt_desc; spos : position }

and stmt_desc =
  | Assign of lvalue * expr
  | For of string * expr * expr * stmt list  (* for i in lo .. hi { ... }, inclusive *)
  | If of expr * stmt list * stmt list

type decl =
  | Dconst of string * const_init
  | Dparty of string
  | Dinput of string * ty * string  (* name, type, owning party *)
  | Doutput of string * ty
  | Dvar of string * ty

and const_init = Cscalar of expr | Carray of expr list

type program = {
  name : string;
  decls : (decl * position) list;
  body : stmt list;
}

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Land -> "&&"
  | Lor -> "||"
