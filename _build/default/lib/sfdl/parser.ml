open Ast

exception Error of string * position

type state = { lexemes : Lexer.lexeme array; mutable cursor : int }

let current st = st.lexemes.(st.cursor)
let peek_token st = (current st).token
let peek_pos st = (current st).pos

let advance st = if st.cursor < Array.length st.lexemes - 1 then st.cursor <- st.cursor + 1

let fail st msg =
  raise (Error (Printf.sprintf "%s (found %s)" msg (Lexer.token_to_string (peek_token st)), peek_pos st))

let eat_punct st p =
  match peek_token st with
  | Lexer.PUNCT q when q = p -> advance st
  | _ -> fail st (Printf.sprintf "expected %S" p)

let eat_kw st k =
  match peek_token st with
  | Lexer.KW q when q = k -> advance st
  | _ -> fail st (Printf.sprintf "expected keyword %S" k)

let eat_ident st =
  match peek_token st with
  | Lexer.IDENT name ->
      advance st;
      name
  | _ -> fail st "expected identifier"

let accept_punct st p =
  match peek_token st with
  | Lexer.PUNCT q when q = p ->
      advance st;
      true
  | _ -> false

let accept_kw st k =
  match peek_token st with
  | Lexer.KW q when q = k ->
      advance st;
      true
  | _ -> false

(* Expression precedence ladder.  Each level takes the parser for the level
   above it. *)

let rec parse_expr st = parse_cond st

and parse_cond st =
  let pos = peek_pos st in
  let c = parse_lor st in
  if accept_punct st "?" then begin
    let a = parse_expr st in
    eat_punct st ":";
    let b = parse_expr st in
    { desc = Cond (c, a, b); pos }
  end
  else c

and parse_left_assoc st ops next =
  let pos = peek_pos st in
  let rec loop acc =
    match peek_token st with
    | Lexer.PUNCT p when List.mem_assoc p ops ->
        advance st;
        let rhs = next st in
        loop { desc = Binop (List.assoc p ops, acc, rhs); pos }
    | _ -> acc
  in
  loop (next st)

and parse_lor st = parse_left_assoc st [ ("||", Lor) ] parse_land
and parse_land st = parse_left_assoc st [ ("&&", Land) ] parse_bitor
and parse_bitor st = parse_left_assoc st [ ("|", Or) ] parse_bitxor
and parse_bitxor st = parse_left_assoc st [ ("^", Xor) ] parse_bitand
and parse_bitand st = parse_left_assoc st [ ("&", And) ] parse_equality
and parse_equality st = parse_left_assoc st [ ("==", Eq); ("!=", Ne) ] parse_rel

and parse_rel st =
  parse_left_assoc st [ ("<", Lt); ("<=", Le); (">", Gt); (">=", Ge) ] parse_additive

and parse_additive st = parse_left_assoc st [ ("+", Add); ("-", Sub) ] parse_mult
and parse_mult st = parse_left_assoc st [ ("*", Mul); ("/", Div); ("%", Mod) ] parse_unary

and parse_unary st =
  let pos = peek_pos st in
  if accept_punct st "!" then { desc = Unop (Not, parse_unary st); pos }
  else if accept_punct st "-" then { desc = Unop (Neg, parse_unary st); pos }
  else parse_primary st

and parse_primary st =
  let pos = peek_pos st in
  match peek_token st with
  | Lexer.INT n ->
      advance st;
      { desc = Int n; pos }
  | Lexer.KW "true" ->
      advance st;
      { desc = Bool true; pos }
  | Lexer.KW "false" ->
      advance st;
      { desc = Bool false; pos }
  | Lexer.IDENT name ->
      advance st;
      if accept_punct st "[" then begin
        let idx = parse_expr st in
        eat_punct st "]";
        { desc = Index (name, idx); pos }
      end
      else { desc = Var name; pos }
  | Lexer.PUNCT "(" ->
      advance st;
      let e = parse_expr st in
      eat_punct st ")";
      e
  | _ -> fail st "expected an expression"

let parse_ty st =
  let base =
    if accept_kw st "bool" then Tbool
    else if accept_kw st "uint" then begin
      eat_punct st "<";
      (* Width expressions stop at additive precedence so '>' closes. *)
      let w = parse_additive st in
      eat_punct st ">";
      Tuint w
    end
    else fail st "expected a type (bool or uint<...>)"
  in
  if accept_punct st "[" then begin
    let len = parse_expr st in
    eat_punct st "]";
    Tarray (base, len)
  end
  else base

let rec parse_stmt st =
  let spos = peek_pos st in
  match peek_token st with
  | Lexer.KW "for" ->
      advance st;
      let var = eat_ident st in
      eat_kw st "in";
      let lo = parse_additive st in
      eat_punct st "..";
      let hi = parse_additive st in
      eat_punct st "{";
      let body = parse_stmts st in
      eat_punct st "}";
      { sdesc = For (var, lo, hi, body); spos }
  | Lexer.KW "if" ->
      advance st;
      eat_punct st "(";
      let cond = parse_expr st in
      eat_punct st ")";
      eat_punct st "{";
      let then_branch = parse_stmts st in
      eat_punct st "}";
      let else_branch =
        if accept_kw st "else" then begin
          eat_punct st "{";
          let stmts = parse_stmts st in
          eat_punct st "}";
          stmts
        end
        else []
      in
      { sdesc = If (cond, then_branch, else_branch); spos }
  | Lexer.IDENT name ->
      advance st;
      let lv =
        if accept_punct st "[" then begin
          let idx = parse_expr st in
          eat_punct st "]";
          Lindex (name, idx)
        end
        else Lvar name
      in
      eat_punct st "=";
      let rhs = parse_expr st in
      eat_punct st ";";
      { sdesc = Assign (lv, rhs); spos }
  | _ -> fail st "expected a statement"

and parse_stmts st =
  let rec loop acc =
    match peek_token st with
    | Lexer.PUNCT "}" -> List.rev acc
    | _ -> loop (parse_stmt st :: acc)
  in
  loop []

let parse_decl st =
  let pos = peek_pos st in
  if accept_kw st "const" then begin
    let name = eat_ident st in
    eat_punct st "=";
    let init =
      if accept_punct st "[" then begin
        let rec elems acc =
          let e = parse_expr st in
          if accept_punct st "," then elems (e :: acc) else List.rev (e :: acc)
        in
        let es = elems [] in
        eat_punct st "]";
        Carray es
      end
      else Cscalar (parse_expr st)
    in
    eat_punct st ";";
    Some (Dconst (name, init), pos)
  end
  else if accept_kw st "party" then begin
    let name = eat_ident st in
    eat_punct st ";";
    Some (Dparty name, pos)
  end
  else if accept_kw st "input" then begin
    let name = eat_ident st in
    eat_punct st ":";
    let ty = parse_ty st in
    eat_kw st "of";
    let owner = eat_ident st in
    eat_punct st ";";
    Some (Dinput (name, ty, owner), pos)
  end
  else if accept_kw st "output" then begin
    let name = eat_ident st in
    eat_punct st ":";
    let ty = parse_ty st in
    eat_punct st ";";
    Some (Doutput (name, ty), pos)
  end
  else if accept_kw st "var" then begin
    let name = eat_ident st in
    eat_punct st ":";
    let ty = parse_ty st in
    eat_punct st ";";
    Some (Dvar (name, ty), pos)
  end
  else None

let parse src =
  let st = { lexemes = Array.of_list (Lexer.tokenize src); cursor = 0 } in
  eat_kw st "program";
  let name = eat_ident st in
  eat_punct st ";";
  let rec decls acc =
    match parse_decl st with Some d -> decls (d :: acc) | None -> List.rev acc
  in
  let decls = decls [] in
  eat_kw st "main";
  eat_punct st "{";
  let body = parse_stmts st in
  eat_punct st "}";
  (match peek_token st with
  | Lexer.EOF -> ()
  | _ -> fail st "expected end of input after main block");
  { name; decls; body }
