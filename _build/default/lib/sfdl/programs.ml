let bits_for = Eppi_circuit.Word.bits_for

let count_below ~c ~q ~thresholds =
  if c < 2 then invalid_arg "Programs.count_below: need at least 2 coordinators";
  if q < 2 then invalid_arg "Programs.count_below: modulus too small";
  let n = Array.length thresholds in
  if n = 0 then invalid_arg "Programs.count_below: no identities";
  Array.iter
    (fun t ->
      if t < 0 || t >= q then invalid_arg "Programs.count_below: threshold out of [0, q)")
    thresholds;
  let w = bits_for (q - 1) in
  let cw = bits_for n in
  (* Sum of c residues needs bits_for (c * (q-1)) bits. *)
  let tw = bits_for (c * (q - 1)) in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "program count_below;";
  line "const N = %d;" n;
  line "const Q = %d;" q;
  line "const T = [%s];" (String.concat ", " (Array.to_list (Array.map string_of_int thresholds)));
  for i = 0 to c - 1 do
    line "party coord%d;" i
  done;
  for i = 0 to c - 1 do
    line "input s%d : uint<%d>[N] of coord%d;" i w i
  done;
  line "output common : bool[N];";
  line "output freq : uint<%d>[N];" w;
  line "output count : uint<%d>;" cw;
  line "var total : uint<%d>;" tw;
  line "main {";
  line "  count = 0;";
  line "  for j in 0 .. N - 1 {";
  let sum_expr = String.concat " + " (List.init c (fun i -> Printf.sprintf "s%d[j]" i)) in
  line "    total = %s;" sum_expr;
  (* A sum of c canonical residues is below c*Q: c-1 conditional subtracts
     reduce it fully. *)
  for _ = 1 to c - 1 do
    line "    if (total >= Q) { total = total - Q; }"
  done;
  line "    common[j] = total >= T[j];";
  line "    if (common[j]) {";
  line "      count = count + 1;";
  line "      freq[j] = 0;";
  line "    } else {";
  line "      freq[j] = total;";
  line "    }";
  line "  }";
  line "}";
  Buffer.contents buf

let millionaires ~width =
  Printf.sprintf
    {|program millionaires;
party alice;
party bob;
input a : uint<%d> of alice;
input b : uint<%d> of bob;
output alice_richer : bool;
main {
  alice_richer = a > b;
}
|}
    width width

let sum3 ~width =
  Printf.sprintf
    {|program sum3;
party p0;
party p1;
party p2;
input x0 : uint<%d> of p0;
input x1 : uint<%d> of p1;
input x2 : uint<%d> of p2;
output total : uint<%d>;
main {
  total = x0 + x1 + x2;
}
|}
    width width width (width + 2)

let vickrey_auction ~width ~bidders =
  if bidders < 2 then invalid_arg "Programs.vickrey_auction: need at least 2 bidders";
  let iw = bits_for (bidders - 1) in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "program vickrey;";
  for i = 0 to bidders - 1 do
    line "party bidder%d;" i
  done;
  for i = 0 to bidders - 1 do
    line "input bid%d : uint<%d> of bidder%d;" i width i
  done;
  line "var bids : uint<%d>[%d];" width bidders;
  line "output winner : uint<%d>;" iw;
  line "output price : uint<%d>;" width;
  line "var best : uint<%d>;" width;
  line "var second : uint<%d>;" width;
  line "main {";
  for i = 0 to bidders - 1 do
    line "  bids[%d] = bid%d;" i i
  done;
  line "  best = bids[0];";
  line "  second = 0;";
  line "  winner = 0;";
  line "  for i in 1 .. %d {" (bidders - 1);
  line "    if (bids[i] > best) {";
  line "      second = best;";
  line "      best = bids[i];";
  line "      winner = i;";
  line "    } else {";
  line "      if (bids[i] > second) { second = bids[i]; }";
  line "    }";
  line "  }";
  line "  price = second;";
  line "}";
  Buffer.contents buf
