(** Static checks for mini-SFDL programs.

    Beyond classical typing (bool vs uint, operand compatibility), the
    checker enforces the two security-relevant structural rules the compiler
    relies on:

    - array indexes and loop bounds must be {i public} expressions (built
      from literals, constants and loop variables) — secret-dependent
      indexing has no circuit counterpart in this language;
    - unary minus only appears in public (constant) expressions, since
      secret values are unsigned words.

    Width and bound {i values} involving loop variables are validated later,
    during compilation (after unrolling). *)

type error = { message : string; pos : Ast.position }

exception Error of error

val check : Ast.program -> unit
(** @raise Error with a source position on the first problem found. *)

val check_result : Ast.program -> (unit, error) result
