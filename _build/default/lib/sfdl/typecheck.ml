open Ast

type error = { message : string; pos : Ast.position }

exception Error of error

let fail pos fmt = Printf.ksprintf (fun message -> raise (Error { message; pos })) fmt

(* Typechecking view of a value.  Widths are best-effort (literals and
   loop-variable-dependent widths stay symbolic as [AnyUint]); the compiler
   recomputes exact widths after unrolling. *)
type vty = Bool | AnyUint | Arr of vty * unit

type binding =
  | Public  (* const scalar, const array cell, loop variable *)
  | PublicArr
  | Secret of vty
  | Party

let rec scalar = function Bool -> "bool" | AnyUint -> "uint" | Arr _ -> "array"

and pp_vty v = scalar v

type env = (string, binding) Hashtbl.t

let lookup env pos name =
  match Hashtbl.find_opt env name with
  | Some b -> b
  | None -> fail pos "unknown identifier %s" name

(* An expression is public when it touches no secret variable. *)
let rec is_public env e =
  match e.desc with
  | Int _ | Bool _ -> true
  | Var name -> (
      match Hashtbl.find_opt env name with
      | Some (Public | PublicArr) -> true
      | _ -> false)
  | Index (name, idx) -> (
      match Hashtbl.find_opt env name with
      | Some PublicArr -> is_public env idx
      | _ -> false)
  | Binop (_, a, b) -> is_public env a && is_public env b
  | Unop (_, a) -> is_public env a
  | Cond (c, a, b) -> is_public env c && is_public env a && is_public env b

let rec type_of env e : vty =
  match e.desc with
  | Int _ -> AnyUint
  | Bool _ -> Bool
  | Var name -> (
      match lookup env e.pos name with
      | Public -> AnyUint
      | PublicArr -> fail e.pos "constant array %s must be indexed" name
      | Party -> fail e.pos "%s is a party, not a value" name
      | Secret (Arr _) -> fail e.pos "array %s must be indexed" name
      | Secret v -> v)
  | Index (name, idx) ->
      (* Reads may use a secret index (lowered to a mux chain); writes are
         restricted to public indexes in [check_stmt]. *)
      (match type_of env idx with
      | AnyUint -> ()
      | t -> fail idx.pos "array index must be an integer, got %s" (pp_vty t));
      (match lookup env e.pos name with
      | PublicArr -> AnyUint
      | Secret (Arr (elem, ())) -> elem
      | Public -> fail e.pos "%s is a scalar constant, not an array" name
      | Party -> fail e.pos "%s is a party, not a value" name
      | Secret _ -> fail e.pos "%s is not an array" name)
  | Unop (Not, a) -> (
      match type_of env a with
      | Bool -> Bool
      | t -> fail e.pos "operand of ! must be bool, got %s" (pp_vty t))
  | Unop (Neg, a) ->
      if not (is_public env a) then
        fail e.pos "unary minus applies to public (constant) expressions only";
      (match type_of env a with
      | AnyUint -> AnyUint
      | t -> fail e.pos "operand of unary minus must be an integer, got %s" (pp_vty t))
  | Binop (op, a, b) -> (
      let ta = type_of env a and tb = type_of env b in
      let both_uint () =
        match (ta, tb) with
        | AnyUint, AnyUint -> ()
        | _ -> fail e.pos "operands of %s must be integers (%s, %s)" (binop_name op) (pp_vty ta) (pp_vty tb)
      in
      let both_bool () =
        match (ta, tb) with
        | Bool, Bool -> ()
        | _ -> fail e.pos "operands of %s must be bool (%s, %s)" (binop_name op) (pp_vty ta) (pp_vty tb)
      in
      match op with
      | Add | Sub | Mul | Div | Mod ->
          both_uint ();
          AnyUint
      | Lt | Le | Gt | Ge ->
          both_uint ();
          Bool
      | Eq | Ne ->
          (match (ta, tb) with
          | AnyUint, AnyUint | Bool, Bool -> ()
          | _ ->
              fail e.pos "operands of %s must have the same type (%s, %s)" (binop_name op)
                (pp_vty ta) (pp_vty tb));
          Bool
      | And | Or | Xor -> (
          match (ta, tb) with
          | Bool, Bool -> Bool
          | AnyUint, AnyUint -> AnyUint
          | _ ->
              fail e.pos "operands of %s must both be bool or both integers" (binop_name op))
      | Land | Lor ->
          both_bool ();
          Bool)
  | Cond (c, a, b) -> (
      (match type_of env c with
      | Bool -> ()
      | t -> fail c.pos "condition of ?: must be bool, got %s" (pp_vty t));
      let ta = type_of env a and tb = type_of env b in
      match (ta, tb) with
      | AnyUint, AnyUint -> AnyUint
      | Bool, Bool -> Bool
      | _ -> fail e.pos "branches of ?: must have the same type (%s, %s)" (pp_vty ta) (pp_vty tb))

(* Widths and lengths must themselves be public integer expressions. *)
let rec check_ty env pos = function
  | Tbool -> Bool
  | Tuint w ->
      if not (is_public env w) then fail w.pos "uint width must be a public expression";
      (match type_of env w with
      | AnyUint -> AnyUint
      | t -> fail w.pos "uint width must be an integer, got %s" (pp_vty t))
  | Tarray (elem, len) ->
      if not (is_public env len) then fail len.pos "array length must be a public expression";
      (match type_of env len with
      | AnyUint -> ()
      | t -> fail len.pos "array length must be an integer, got %s" (pp_vty t));
      (match elem with
      | Tarray _ -> fail pos "nested arrays are not supported"
      | Tbool | Tuint _ -> Arr (check_ty env pos elem, ()))

let compatible declared actual =
  match (declared, actual) with
  | Bool, Bool | AnyUint, AnyUint -> true
  | _ -> false

let rec check_stmt env ~assignable stmt =
  match stmt.sdesc with
  | Assign (lv, rhs) -> (
      let trhs = type_of env rhs in
      match lv with
      | Lvar name -> (
          match lookup env stmt.spos name with
          | Secret (Arr _) -> fail stmt.spos "cannot assign whole array %s" name
          | Secret v ->
              if not (List.mem name assignable) then
                fail stmt.spos "cannot assign to input %s" name;
              if not (compatible v trhs) then
                fail stmt.spos "assigning %s to %s variable %s" (pp_vty trhs) (pp_vty v) name
          | Public | PublicArr -> fail stmt.spos "cannot assign to constant %s" name
          | Party -> fail stmt.spos "cannot assign to party %s" name)
      | Lindex (name, idx) -> (
          if not (is_public env idx) then fail idx.pos "array index must be a public expression";
          match lookup env stmt.spos name with
          | Secret (Arr (elem, ())) ->
              if not (List.mem name assignable) then
                fail stmt.spos "cannot assign to input %s" name;
              if not (compatible elem trhs) then
                fail stmt.spos "assigning %s to %s array %s" (pp_vty trhs) (pp_vty elem) name
          | Secret _ -> fail stmt.spos "%s is not an array" name
          | Public | PublicArr -> fail stmt.spos "cannot assign to constant %s" name
          | Party -> fail stmt.spos "cannot assign to party %s" name))
  | For (var, lo, hi, body) ->
      if not (is_public env lo && is_public env hi) then
        fail stmt.spos "loop bounds must be public expressions";
      (match (type_of env lo, type_of env hi) with
      | AnyUint, AnyUint -> ()
      | _ -> fail stmt.spos "loop bounds must be integers");
      if Hashtbl.mem env var then fail stmt.spos "loop variable %s shadows an existing name" var;
      Hashtbl.add env var Public;
      List.iter (check_stmt env ~assignable) body;
      Hashtbl.remove env var
  | If (cond, then_branch, else_branch) ->
      (match type_of env cond with
      | Bool -> ()
      | t -> fail cond.pos "if condition must be bool, got %s" (pp_vty t));
      List.iter (check_stmt env ~assignable) then_branch;
      List.iter (check_stmt env ~assignable) else_branch

let check program =
  let env : env = Hashtbl.create 16 in
  let assignable = ref [] in
  let parties = ref [] in
  let declare pos name binding =
    if Hashtbl.mem env name then fail pos "duplicate declaration of %s" name;
    Hashtbl.add env name binding
  in
  List.iter
    (fun (decl, pos) ->
      match decl with
      | Dconst (name, Cscalar e) ->
          if not (is_public env e) then fail e.pos "constant initializer must be public";
          (match type_of env e with
          | AnyUint -> ()
          | t -> fail e.pos "constant %s must be an integer, got %s" name (pp_vty t));
          declare pos name Public
      | Dconst (name, Carray es) ->
          List.iter
            (fun e ->
              if not (is_public env e) then fail e.pos "constant initializer must be public";
              match type_of env e with
              | AnyUint -> ()
              | t -> fail e.pos "constant array element must be an integer, got %s" (pp_vty t))
            es;
          declare pos name PublicArr
      | Dparty name ->
          declare pos name Party;
          parties := name :: !parties
      | Dinput (name, ty, owner) ->
          (match Hashtbl.find_opt env owner with
          | Some Party -> ()
          | _ -> fail pos "input %s: unknown party %s" name owner);
          declare pos name (Secret (check_ty env pos ty))
      | Doutput (name, ty) | Dvar (name, ty) ->
          declare pos name (Secret (check_ty env pos ty));
          assignable := name :: !assignable)
    program.decls;
  if !parties = [] then
    fail { line = 1; col = 1 } "program %s declares no parties" program.name;
  List.iter (check_stmt env ~assignable:!assignable) program.body

let check_result program = try Ok (check program) with Error e -> Result.Error e
