(** Canned SFDL programs.

    [count_below] is the program the ε-PPI construction runs inside generic
    MPC (paper Algorithm 2): the c coordinators feed their share vectors, the
    circuit reconstructs each identity's frequency under the additive
    sharing, classifies it against a public per-identity threshold, and
    reveals (a) the common/non-common bit, (b) the frequency masked to zero
    for common identities — safe to release because non-common frequencies
    are exactly the ones the paper deems non-sensitive — and (c) the number
    of common identities, which drives the mixing ratio λ.

    Note the paper's naming wrinkle (see DESIGN.md): Algorithm 2 is called
    CountBelow and counts [S\[j\] < t], while Algorithm 1 uses the result as
    the number of identities {i at or above} the threshold.  We implement the
    semantics Algorithm 1 needs. *)

val count_below : c:int -> q:int -> thresholds:int array -> string
(** SFDL source for [c] coordinators, modulus [q] and one public threshold
    per identity (array length = identity count).
    @raise Invalid_argument if [c < 2], [q < 2], or [thresholds] is empty or
    contains a value outside [0, q). *)

val millionaires : width:int -> string
(** Yao's classic two-party comparison, used by tests and the MPC example. *)

val sum3 : width:int -> string
(** Three parties add their inputs; exercises width growth. *)

val vickrey_auction : width:int -> bidders:int -> string
(** Second-price sealed-bid auction among [bidders] parties: outputs the
    winner index and the price (the second-highest bid).  A stress test for
    the compiler's secret-if merging. *)
