(** Reference interpreter for mini-SFDL.

    Executes a program directly on concrete values, with {i exactly} the
    semantics the circuit compiler implements — including the width
    behaviour, which the interpreter tracks explicitly: every integer value
    carries the width its circuit counterpart would have (literals at
    [bits_for v]; [+] grows by one bit; [*] to the sum of widths; [-] wraps
    two's-complement at the common width; division by zero saturates the
    quotient and truncates the remainder to the divisor width, the hardware
    convention of {!Eppi_circuit.Word.divmod}; assignment truncates or
    zero-extends to the declared width).

    Its purpose is differential testing: for any well-typed program and any
    inputs, [Interp.run] must agree with compiling via {!Compile} and
    evaluating the circuit.  The test suite checks this on hand-written and
    randomly generated programs. *)

exception Error of string * Ast.position

val run : Ast.program -> inputs:(string * Compile.data) list -> (string * Compile.data) list
(** Interpret the program; returns outputs in declaration order, shaped like
    {!Compile.decode_outputs}.
    @raise Error on runtime errors (bad index, missing input, type
    confusion); programs accepted by {!Typecheck.check} with compile-time
    constant bounds only fail here for out-of-range indexes, mirroring
    {!Compile.Error}. *)

val run_source : string -> inputs:(string * Compile.data) list -> (string * Compile.data) list
(** Parse, typecheck and interpret.
    @raise Lexer.Error, Parser.Error, Typecheck.Error, or Error. *)
