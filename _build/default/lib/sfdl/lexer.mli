(** Hand-rolled lexer for the mini-SFDL language.

    Supports line comments ([// ...]) and the token set used by the grammar
    in {!Parser}.  Positions are 1-based (line, column) for error
    reporting. *)

type token =
  | IDENT of string
  | INT of int
  | KW of string  (** program const party input output var main for in if else of uint bool true false *)
  | PUNCT of string
      (** one of: ; : , ( ) [ ] {{ }} < > <= >= == != + - * / % & | ^ && || ! ? = .. *)
  | EOF

type lexeme = { token : token; pos : Ast.position }

exception Error of string * Ast.position

val tokenize : string -> lexeme list
(** @raise Error on an unexpected character or malformed literal. *)

val token_to_string : token -> string
