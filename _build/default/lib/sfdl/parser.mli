(** Recursive-descent parser for mini-SFDL.

    Grammar (arrays are one-dimensional; [uint] width expressions parse at
    additive precedence so the closing [>] is unambiguous):

    {v
    program   := "program" IDENT ";" decl* "main" "{" stmt* "}"
    decl      := "const" IDENT "=" (expr | "[" expr,* "]") ";"
               | "party" IDENT ";"
               | "input" IDENT ":" ty "of" IDENT ";"
               | "output" IDENT ":" ty ";"
               | "var" IDENT ":" ty ";"
    ty        := ("bool" | "uint" "<" width ">") ("[" expr "]")?
    stmt      := lvalue "=" expr ";"
               | "for" IDENT "in" expr ".." expr "{" stmt* "}"
               | "if" "(" expr ")" "{" stmt* "}" ("else" "{" stmt* "}")?
    expr      := full C-like precedence ladder with "?:", "||", "&&",
                 "|", "^", "&", equality, relations, additive,
                 multiplicative, unary "!" and "-"
    v} *)

exception Error of string * Ast.position

val parse : string -> Ast.program
(** @raise Error on syntax errors, with source position.
    @raise Lexer.Error on lexical errors. *)
