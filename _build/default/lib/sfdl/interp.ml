open Ast

exception Error of string * position

let fail pos fmt = Printf.ksprintf (fun message -> raise (Error (message, pos))) fmt

let bits_for = Eppi_circuit.Word.bits_for

(* A secret integer value carries the width its circuit counterpart would
   have; wrap/saturate behaviour depends on it. *)
type uint_value = { value : int; width : int }
type value = Vbool of bool | Vuint of uint_value

type slot = { rty : rty; cells : value array }
and rty = Rbool | Ruint of int

type binding =
  | Kconst of int
  | Kconstarr of int array
  | Kloop of int
  | Kparty
  | Kslot of slot

type env = (string, binding) Hashtbl.t

let lookup (env : env) pos name =
  match Hashtbl.find_opt env name with
  | Some b -> b
  | None -> fail pos "unknown identifier %s" name

let mask width v = v land ((1 lsl width) - 1)

let uint ~width value = Vuint { value; width }

(* ---- public (constant) evaluation: unbounded ints, bools as 0/1 ---- *)

let rec eval_pub env e =
  match e.desc with
  | Int n -> n
  | Bool b -> if b then 1 else 0
  | Var name -> (
      match lookup env e.pos name with
      | Kconst v | Kloop v -> v
      | _ -> fail e.pos "%s is not a public expression" name)
  | Index (name, idx) -> (
      let i = eval_pub env idx in
      match lookup env e.pos name with
      | Kconstarr a ->
          if i < 0 || i >= Array.length a then
            fail idx.pos "index %d out of bounds for %s (length %d)" i name (Array.length a);
          a.(i)
      | _ -> fail e.pos "%s is not a public array" name)
  | Unop (Neg, a) -> -eval_pub env a
  | Unop (Not, a) -> if eval_pub env a = 0 then 1 else 0
  | Binop (op, a, b) -> (
      let va = eval_pub env a and vb = eval_pub env b in
      match op with
      | Add -> va + vb
      | Sub -> va - vb
      | Mul -> va * vb
      | Div ->
          if vb = 0 then fail e.pos "division by zero in constant expression";
          va / vb
      | Mod ->
          if vb = 0 then fail e.pos "modulo by zero in constant expression";
          va mod vb
      | Lt -> if va < vb then 1 else 0
      | Le -> if va <= vb then 1 else 0
      | Gt -> if va > vb then 1 else 0
      | Ge -> if va >= vb then 1 else 0
      | Eq -> if va = vb then 1 else 0
      | Ne -> if va <> vb then 1 else 0
      | And -> va land vb
      | Or -> va lor vb
      | Xor -> va lxor vb
      | Land -> if va <> 0 && vb <> 0 then 1 else 0
      | Lor -> if va <> 0 || vb <> 0 then 1 else 0)
  | Cond (c, a, b) -> if eval_pub env c <> 0 then eval_pub env a else eval_pub env b

let rec is_public (env : env) e =
  match e.desc with
  | Int _ | Bool _ -> true
  | Var name -> (
      match Hashtbl.find_opt env name with
      | Some (Kconst _ | Kloop _ | Kconstarr _) -> true
      | _ -> false)
  | Index (name, idx) -> (
      match Hashtbl.find_opt env name with
      | Some (Kconstarr _) -> is_public env idx
      | _ -> false)
  | Binop (_, a, b) -> is_public env a && is_public env b
  | Unop (_, a) -> is_public env a
  | Cond (c, a, b) -> is_public env c && is_public env a && is_public env b

(* ---- secret evaluation with the compiler's width discipline ---- *)

let rec eval env e : value =
  if is_public env e then begin
    match e.desc with
    | Bool v -> Vbool v
    | _ ->
        let v = eval_pub env e in
        (* Mirror the compiler's fold: comparison-shaped public expressions
           become bools; everything else is a constant word. *)
        (match e.desc with
        | Binop ((Lt | Le | Gt | Ge | Eq | Ne | Land | Lor), _, _) | Unop (Not, _) ->
            Vbool (v <> 0)
        | _ ->
            if v < 0 then fail e.pos "negative constant %d cannot flow into the circuit" v;
            uint ~width:(bits_for v) v)
  end
  else
    match e.desc with
    | Int _ | Bool _ -> assert false
    | Var name -> (
        match lookup env e.pos name with
        | Kslot { cells = [| v |]; _ } -> v
        | Kslot _ -> fail e.pos "array %s must be indexed" name
        | _ -> assert false)
    | Index (name, idx) when is_public env idx -> (
        let i = eval_pub env idx in
        match lookup env e.pos name with
        | Kslot slot ->
            if i < 0 || i >= Array.length slot.cells then
              fail idx.pos "index %d out of bounds for %s (length %d)" i name
                (Array.length slot.cells);
            slot.cells.(i)
        | _ -> fail e.pos "%s is not an array" name)
    | Index (name, idx) -> (
        (* Secret index: the circuit muxes over every cell, so the result
           width is the maximum cell width and out-of-range selects zero. *)
        let i =
          match eval env idx with
          | Vuint { value; _ } -> value
          | Vbool _ -> fail idx.pos "array index must be an integer"
        in
        let cells =
          match lookup env e.pos name with
          | Kslot slot -> Array.copy slot.cells
          | Kconstarr a ->
              Array.map
                (fun v ->
                  if v < 0 then
                    fail e.pos "negative constant %d cannot flow into the circuit" v;
                  uint ~width:(bits_for v) v)
                a
          | _ -> fail e.pos "%s is not an array" name
        in
        match cells.(0) with
        | Vbool _ ->
            if i < Array.length cells then cells.(i) else Vbool false
        | Vuint _ ->
            let width =
              Array.fold_left
                (fun acc c -> match c with Vuint u -> max acc u.width | Vbool _ -> acc)
                1 cells
            in
            let value =
              if i < Array.length cells then
                match cells.(i) with
                | Vuint u -> u.value
                | Vbool _ -> fail e.pos "internal: mixed cell types in %s" name
              else 0
            in
            uint ~width value)
    | Unop (Not, a) -> (
        match eval env a with
        | Vbool v -> Vbool (not v)
        | Vuint _ -> fail e.pos "operand of ! must be bool")
    | Unop (Neg, _) -> fail e.pos "unary minus on a secret value is not supported"
    | Cond (c, a, b) -> (
        let sel = match eval env c with
          | Vbool v -> v
          | Vuint _ -> fail c.pos "condition must be bool"
        in
        (* Both branches are evaluated (the circuit always builds both); the
           result width is the mux width = max of branch widths. *)
        match (eval env a, eval env b) with
        | Vbool x, Vbool y -> Vbool (if sel then x else y)
        | Vuint x, Vuint y ->
            uint ~width:(max x.width y.width) (if sel then x.value else y.value)
        | _ -> fail e.pos "branches of ?: must have the same type")
    | Binop (op, a, b) -> eval_binop env e.pos op (eval env a) (eval env b)

and eval_binop _env pos op va vb =
  let uints () =
    match (va, vb) with
    | Vuint x, Vuint y -> (x, y)
    | _ -> fail pos "operands of %s must be integers" (binop_name op)
  in
  let bools () =
    match (va, vb) with
    | Vbool x, Vbool y -> (x, y)
    | _ -> fail pos "operands of %s must be bool" (binop_name op)
  in
  match op with
  | Add ->
      let x, y = uints () in
      uint ~width:(max x.width y.width + 1) (x.value + y.value)
  | Sub ->
      (* Two's-complement wrap at the common width (Word.sub). *)
      let x, y = uints () in
      let width = max x.width y.width in
      uint ~width (mask width (x.value - y.value))
  | Mul ->
      let x, y = uints () in
      uint ~width:(x.width + y.width) (x.value * y.value)
  | Div ->
      (* Word.divmod: quotient at the dividend's width; /0 saturates. *)
      let x, y = uints () in
      if y.value = 0 then uint ~width:x.width (mask x.width (-1))
      else uint ~width:x.width (x.value / y.value)
  | Mod ->
      (* Remainder at the divisor's width; mod 0 returns the dividend
         truncated to that width. *)
      let x, y = uints () in
      if y.value = 0 then uint ~width:y.width (mask y.width x.value)
      else uint ~width:y.width (x.value mod y.value)
  | Lt ->
      let x, y = uints () in
      Vbool (x.value < y.value)
  | Le ->
      let x, y = uints () in
      Vbool (x.value <= y.value)
  | Gt ->
      let x, y = uints () in
      Vbool (x.value > y.value)
  | Ge ->
      let x, y = uints () in
      Vbool (x.value >= y.value)
  | Eq -> (
      match (va, vb) with
      | Vuint x, Vuint y -> Vbool (x.value = y.value)
      | Vbool x, Vbool y -> Vbool (x = y)
      | _ -> fail pos "operands of == must have the same type")
  | Ne -> (
      match (va, vb) with
      | Vuint x, Vuint y -> Vbool (x.value <> y.value)
      | Vbool x, Vbool y -> Vbool (x <> y)
      | _ -> fail pos "operands of != must have the same type")
  | And -> (
      match (va, vb) with
      | Vbool x, Vbool y -> Vbool (x && y)
      | Vuint x, Vuint y -> uint ~width:(max x.width y.width) (x.value land y.value)
      | _ -> fail pos "operands of & must both be bool or both integers")
  | Or -> (
      match (va, vb) with
      | Vbool x, Vbool y -> Vbool (x || y)
      | Vuint x, Vuint y -> uint ~width:(max x.width y.width) (x.value lor y.value)
      | _ -> fail pos "operands of | must both be bool or both integers")
  | Xor -> (
      match (va, vb) with
      | Vbool x, Vbool y -> Vbool (x <> y)
      | Vuint x, Vuint y -> uint ~width:(max x.width y.width) (x.value lxor y.value)
      | _ -> fail pos "operands of ^ must both be bool or both integers")
  | Land ->
      let x, y = bools () in
      Vbool (x && y)
  | Lor ->
      let x, y = bools () in
      Vbool (x || y)

(* ---- declarations, statements, program ---- *)

let resolve_scalar_ty env pos = function
  | Tbool -> Rbool
  | Tuint w ->
      let width = eval_pub env w in
      if width < 1 || width > 62 then fail pos "uint width %d out of range [1, 62]" width;
      Ruint width
  | Tarray _ -> fail pos "nested arrays are not supported"

let resolve_ty env pos ty =
  match ty with
  | Tarray (elem, len_e) ->
      let len = eval_pub env len_e in
      if len < 1 then fail pos "array length %d must be positive" len;
      (resolve_scalar_ty env pos elem, len)
  | Tbool | Tuint _ -> (resolve_scalar_ty env pos ty, 1)

let zero_value = function Rbool -> Vbool false | Ruint w -> uint ~width:w 0

let coerce rty value pos =
  match (rty, value) with
  | Rbool, Vbool _ -> value
  | Ruint width, Vuint { value; _ } -> uint ~width (mask width value)
  | Rbool, Vuint _ -> fail pos "cannot assign an integer to a bool"
  | Ruint _, Vbool _ -> fail pos "cannot assign a bool to an integer"

(* Secret [if] mirrors the compiler exactly: both branches are elaborated
   (so static rejections — bad constants, out-of-bounds indexes — surface
   whichever branch the condition selects), and the resulting state is the
   taken branch's.  [slots] is the fixed set of mutable slots declared by
   the program, in declaration order. *)
let snapshot slots = List.map (fun (_, slot) -> Array.copy slot.cells) slots

let restore slots saved =
  List.iter2
    (fun (_, slot) cells -> Array.blit cells 0 slot.cells 0 (Array.length cells))
    slots saved

let rec exec env slots stmt =
  match stmt.sdesc with
  | Assign (lv, rhs) -> (
      let v = eval env rhs in
      match lv with
      | Lvar name -> (
          match lookup env stmt.spos name with
          | Kslot slot when Array.length slot.cells = 1 ->
              slot.cells.(0) <- coerce slot.rty v stmt.spos
          | Kslot _ -> fail stmt.spos "cannot assign whole array %s" name
          | _ -> fail stmt.spos "cannot assign to %s" name)
      | Lindex (name, idx) -> (
          let i = eval_pub env idx in
          match lookup env stmt.spos name with
          | Kslot slot ->
              if i < 0 || i >= Array.length slot.cells then
                fail idx.pos "index %d out of bounds for %s (length %d)" i name
                  (Array.length slot.cells);
              slot.cells.(i) <- coerce slot.rty v stmt.spos
          | _ -> fail stmt.spos "cannot assign to %s" name))
  | For (var, lo_e, hi_e, body) ->
      let lo = eval_pub env lo_e and hi = eval_pub env hi_e in
      for i = lo to hi do
        Hashtbl.add env var (Kloop i);
        List.iter (exec env slots) body;
        Hashtbl.remove env var
      done
  | If (cond, then_branch, else_branch) ->
      if is_public env cond then begin
        (* Public condition: the compiler selects a branch statically. *)
        if eval_pub env cond <> 0 then List.iter (exec env slots) then_branch
        else List.iter (exec env slots) else_branch
      end
      else begin
        let sel =
          match eval env cond with
          | Vbool v -> v
          | Vuint _ -> fail cond.pos "if condition must be bool"
        in
        let saved = snapshot slots in
        List.iter (exec env slots) then_branch;
        let then_state = snapshot slots in
        restore slots saved;
        List.iter (exec env slots) else_branch;
        if sel then restore slots then_state
      end

let data_of_slot pos name rty len scalar (cells : value array) : Compile.data =
  let as_bool = function
    | Vbool v -> v
    | Vuint _ -> fail pos "internal: %s cell type confusion" name
  in
  let as_int = function
    | Vuint { value; _ } -> value
    | Vbool _ -> fail pos "internal: %s cell type confusion" name
  in
  match (rty, scalar) with
  | Rbool, true -> Dbool (as_bool cells.(0))
  | Ruint _, true -> Dint (as_int cells.(0))
  | Rbool, false -> Dbools (Array.map as_bool (Array.sub cells 0 len))
  | Ruint _, false -> Dints (Array.map as_int (Array.sub cells 0 len))

let run program ~inputs =
  let env : env = Hashtbl.create 16 in
  let outputs = ref [] in
  let slots = ref [] in
  List.iter
    (fun (decl, pos) ->
      match decl with
      | Dconst (name, Cscalar e) -> Hashtbl.add env name (Kconst (eval_pub env e))
      | Dconst (name, Carray es) ->
          Hashtbl.add env name (Kconstarr (Array.of_list (List.map (eval_pub env) es)))
      | Dparty name -> Hashtbl.add env name Kparty
      | Dinput (name, ty, _owner) ->
          let rty, len = resolve_ty env pos ty in
          let data =
            match List.assoc_opt name inputs with
            | Some d -> d
            | None -> fail pos "missing input %s" name
          in
          let check_fit v w =
            if v < 0 || (w < 62 && v lsr w <> 0) then
              fail pos "input %s: %d does not fit in %d bits" name v w
          in
          let cells =
            match (rty, len, data) with
            | Rbool, 1, Compile.Dbool v -> [| Vbool v |]
            | Ruint w, 1, Compile.Dint v ->
                check_fit v w;
                [| uint ~width:w v |]
            | Rbool, _, Compile.Dbools vs when Array.length vs = len ->
                Array.map (fun v -> Vbool v) vs
            | Ruint w, _, Compile.Dints vs when Array.length vs = len ->
                Array.map
                  (fun v ->
                    check_fit v w;
                    uint ~width:w v)
                  vs
            | _ -> fail pos "input %s: shape mismatch" name
          in
          let slot = { rty; cells } in
          Hashtbl.add env name (Kslot slot);
          slots := (name, slot) :: !slots
      | Doutput (name, ty) ->
          let rty, len = resolve_ty env pos ty in
          let scalar = match ty with Tarray _ -> false | Tbool | Tuint _ -> true in
          let slot = { rty; cells = Array.init len (fun _ -> zero_value rty) } in
          Hashtbl.add env name (Kslot slot);
          slots := (name, slot) :: !slots;
          outputs := (name, pos, rty, len, scalar, slot) :: !outputs
      | Dvar (name, ty) ->
          let rty, len = resolve_ty env pos ty in
          let slot = { rty; cells = Array.init len (fun _ -> zero_value rty) } in
          Hashtbl.add env name (Kslot slot);
          slots := (name, slot) :: !slots)
    program.decls;
  let slots = List.rev !slots in
  List.iter (exec env slots) program.body;
  List.rev_map
    (fun (name, pos, rty, len, scalar, slot) ->
      (name, data_of_slot pos name rty len scalar slot.cells))
    !outputs

let run_source src ~inputs =
  let program = Parser.parse src in
  (match Typecheck.check_result program with
  | Ok () -> ()
  | Result.Error { message; pos } -> raise (Error (message, pos)));
  run program ~inputs
