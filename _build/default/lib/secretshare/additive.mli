(** Additive (c,c) secret sharing over Z_q.

    The SecSumShare protocol (paper Section IV-B, Theorem 4.1) rests on this
    scheme: a secret v is split into c shares, the first c-1 drawn uniformly
    from Z_q and the last chosen so the shares sum to v mod q.  Any c-1 shares
    reveal nothing (each missing share uniformly re-randomizes the sum); all c
    recover v exactly.  The scheme is additively homomorphic: summing the
    share vectors of several secrets share-wise yields a sharing of the sum of
    the secrets, which is what lets providers aggregate locally before any
    reconstruction. *)

open Eppi_prelude

type share = int
(** A share is a canonical residue in [0, q). *)

val share : Rng.t -> q:Modarith.modulus -> c:int -> int -> share array
(** [share rng ~q ~c v] splits [v] into [c] shares.
    @raise Invalid_argument if [c < 1]. *)

val reconstruct : q:Modarith.modulus -> share array -> int
(** Sum of the shares mod q. *)

val add : q:Modarith.modulus -> share array -> share array -> share array
(** Share-wise sum of two share vectors of equal length (the additive
    homomorphism). *)

val add_into : q:Modarith.modulus -> acc:share array -> share array -> unit
(** In-place accumulating variant of {!add}. *)

val zero_sharing : Rng.t -> q:Modarith.modulus -> c:int -> share array
(** A fresh random sharing of 0, usable to re-randomize another sharing. *)

val rerandomize : Rng.t -> q:Modarith.modulus -> share array -> share array
(** Fresh sharing of the same secret (adds a zero sharing). *)
