(** Shamir (k,n) threshold secret sharing over a prime field Z_p.

    Not used by the ε-PPI construction itself (which needs only the additive
    scheme), but the paper's related-work section points at Shamir-based MPC
    for floating point [35]; we ship it as the natural extension point and as
    an independent cross-check for the sharing tests: additive (c,c) sharing
    must agree with Shamir (c,c) sharing on recoverability semantics. *)

open Eppi_prelude

type scheme

val create : Rng.t -> p:Modarith.modulus -> k:int -> n:int -> scheme
(** A (k,n) scheme: n shares, any k reconstruct.
    @raise Invalid_argument unless [1 <= k <= n < p] and [p] is prime. *)

val share : scheme -> Rng.t -> int -> (int * int) array
(** [share s rng v] returns n pairs (x, f(x)) for a fresh random polynomial f
    of degree k-1 with f(0) = v; evaluation points are 1..n. *)

val reconstruct : p:Modarith.modulus -> (int * int) array -> int
(** Lagrange interpolation at 0 from at least k shares (any subset works; the
    caller is responsible for supplying k or more distinct points). *)
