open Eppi_prelude

type scheme = { p : Modarith.modulus; k : int; n : int }

let create _rng ~p ~k ~n =
  if not (Modarith.is_prime (Modarith.to_int p)) then
    invalid_arg "Shamir.create: modulus must be prime";
  if k < 1 || k > n || n >= Modarith.to_int p then
    invalid_arg "Shamir.create: need 1 <= k <= n < p";
  { p; k; n }

let eval_poly ~p coeffs x =
  (* Horner evaluation; coefficient 0 is the secret. *)
  Array.fold_right (fun c acc -> Modarith.add p (Modarith.mul p acc x) c) coeffs 0

let share s rng v =
  let p = s.p in
  let coeffs =
    Array.init s.k (fun i ->
        if i = 0 then Modarith.reduce p v else Rng.int rng (Modarith.to_int p))
  in
  Array.init s.n (fun i ->
      let x = i + 1 in
      (x, eval_poly ~p coeffs x))

let reconstruct ~p points =
  (* Lagrange basis at 0: L_i(0) = prod_{j<>i} x_j / (x_j - x_i). *)
  Array.to_list points
  |> List.mapi (fun i (xi, yi) ->
         let num, den =
           Array.to_list points
           |> List.mapi (fun j (xj, _) -> (i <> j, xj))
           |> List.fold_left
                (fun (num, den) (keep, xj) ->
                  if keep then (Modarith.mul p num xj, Modarith.mul p den (Modarith.sub p xj xi))
                  else (num, den))
                (1, 1)
         in
         Modarith.mul p yi (Modarith.mul p num (Modarith.inv p den)))
  |> List.fold_left (Modarith.add p) 0
