open Eppi_prelude

type share = int

let share rng ~q ~c v =
  if c < 1 then invalid_arg "Additive.share: need at least one share";
  let qi = Modarith.to_int q in
  let shares = Array.init c (fun i -> if i < c - 1 then Rng.int rng qi else 0) in
  let partial = Array.fold_left (Modarith.add q) 0 shares in
  shares.(c - 1) <- Modarith.sub q v partial;
  shares

let reconstruct ~q shares = Array.fold_left (Modarith.add q) 0 shares

let add ~q a b =
  if Array.length a <> Array.length b then invalid_arg "Additive.add: length mismatch";
  Array.map2 (Modarith.add q) a b

let add_into ~q ~acc b =
  if Array.length acc <> Array.length b then invalid_arg "Additive.add_into: length mismatch";
  Array.iteri (fun i x -> acc.(i) <- Modarith.add q acc.(i) x) b

let zero_sharing rng ~q ~c = share rng ~q ~c 0

let rerandomize rng ~q shares =
  add ~q shares (zero_sharing rng ~q ~c:(Array.length shares))
