lib/secretshare/shamir.mli: Eppi_prelude Modarith Rng
