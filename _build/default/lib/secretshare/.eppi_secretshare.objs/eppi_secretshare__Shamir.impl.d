lib/secretshare/shamir.ml: Array Eppi_prelude List Modarith Rng
