lib/secretshare/additive.ml: Array Eppi_prelude Modarith Rng
