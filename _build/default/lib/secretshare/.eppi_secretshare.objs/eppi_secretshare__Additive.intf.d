lib/secretshare/additive.mli: Eppi_prelude Modarith Rng
