let normalize s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') then Buffer.add_char buf c
      else if c >= 'A' && c <= 'Z' then Buffer.add_char buf (Char.lowercase_ascii c))
    s;
  Buffer.contents buf

let soundex_digit = function
  | 'b' | 'f' | 'p' | 'v' -> '1'
  | 'c' | 'g' | 'j' | 'k' | 'q' | 's' | 'x' | 'z' -> '2'
  | 'd' | 't' -> '3'
  | 'l' -> '4'
  | 'm' | 'n' -> '5'
  | 'r' -> '6'
  | _ -> '0' (* vowels and h/w/y *)

let soundex raw =
  let s = normalize raw in
  let letters = ref [] in
  String.iter (fun c -> if c >= 'a' && c <= 'z' then letters := c :: !letters) s;
  match List.rev !letters with
  | [] -> "0000"
  | first :: rest ->
      let buf = Buffer.create 4 in
      Buffer.add_char buf (Char.uppercase_ascii first);
      (* Adjacent duplicate codes collapse; h/w are transparent between
         consonants of the same code (simplified: treat like vowels). *)
      let prev = ref (soundex_digit first) in
      List.iter
        (fun c ->
          let d = soundex_digit c in
          if d <> '0' && d <> !prev && Buffer.length buf < 4 then Buffer.add_char buf d;
          if c <> 'h' && c <> 'w' then prev := d)
        rest;
      while Buffer.length buf < 4 do
        Buffer.add_char buf '0'
      done;
      Buffer.contents buf

let levenshtein a b =
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    let prev = Array.init (lb + 1) Fun.id in
    let curr = Array.make (lb + 1) 0 in
    for i = 1 to la do
      curr.(0) <- i;
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        curr.(j) <- min (min (curr.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit curr 0 prev 0 (lb + 1)
    done;
    prev.(lb)
  end

let levenshtein_similarity a b =
  let la = String.length a and lb = String.length b in
  if la = 0 && lb = 0 then 1.0
  else 1.0 -. (float_of_int (levenshtein a b) /. float_of_int (max la lb))

let bigrams raw =
  let s = normalize raw in
  if s = "" then []
  else begin
    let padded = "_" ^ s ^ "_" in
    List.init (String.length padded - 1) (fun i -> String.sub padded i 2)
  end

let dice a b =
  let ba = bigrams a and bb = bigrams b in
  match (ba, bb) with
  | [], [] -> 1.0
  | [], _ | _, [] -> 0.0
  | _ ->
      (* Multiset intersection size. *)
      let counts = Hashtbl.create 16 in
      List.iter
        (fun g -> Hashtbl.replace counts g (1 + Option.value ~default:0 (Hashtbl.find_opt counts g)))
        ba;
      let common = ref 0 in
      List.iter
        (fun g ->
          match Hashtbl.find_opt counts g with
          | Some k when k > 0 ->
              incr common;
              Hashtbl.replace counts g (k - 1)
          | _ -> ())
        bb;
      2.0 *. float_of_int !common /. float_of_int (List.length ba + List.length bb)
