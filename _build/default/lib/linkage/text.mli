(** String comparison primitives for record linkage.

    The classical toolbox of patient-demographic matching: normalization,
    Soundex phonetic codes, Levenshtein edit distance, and the Dice
    coefficient over character bigrams (the similarity the Bloom-filter
    encodings of {!Bloom} approximate). *)

val normalize : string -> string
(** Lowercase, keep letters and digits only. *)

val soundex : string -> string
(** Classic 4-character American Soundex code ("Robert" -> "R163");
    returns ["0000"] for inputs with no letters. *)

val levenshtein : string -> string -> int
(** Edit distance (insertions, deletions, substitutions). *)

val levenshtein_similarity : string -> string -> float
(** 1 - distance / max-length, in [0, 1]; 1.0 for two empty strings. *)

val bigrams : string -> string list
(** Padded character bigrams of the normalized string ("ann" ->
    ["_a"; "an"; "nn"; "n_"]); empty for the empty string. *)

val dice : string -> string -> float
(** Dice coefficient of the bigram multisets, in [0, 1]. *)
