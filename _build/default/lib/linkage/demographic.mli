(** Demographic records and a synthetic patient-population generator.

    The linkage experiments need what the paper's HIE setting assumes:
    the same patient registered at several hospitals under {i semantically
    heterogeneous} demographics — typos, nicknames, transposed digits.  The
    generator plants a ground-truth population and derives per-provider
    registrations by corrupting fields at configurable rates, so linkage
    quality (precision/recall) can be measured against the truth. *)

open Eppi_prelude

type gender = Female | Male | Other

type t = {
  first : string;
  last : string;
  dob : int * int * int;  (** year, month, day *)
  zip : string;
  gender : gender;
}

val pp : Format.formatter -> t -> unit

(** Field-corruption rates for registrations. *)
type noise = {
  typo_rate : float;  (** Per-name-field chance of one random edit. *)
  dob_error_rate : float;  (** Chance of a digit slip in the date. *)
  zip_error_rate : float;
}

val default_noise : noise
(** 15% name typos, 5% date slips, 10% zip slips. *)

val random_person : Rng.t -> t
(** A fresh ground-truth identity. *)

val corrupt : ?noise:noise -> Rng.t -> t -> t
(** A registration of the person as a (possibly messy) copy. *)

type registration = {
  provider : int;
  record : t;
  truth : int;  (** Ground-truth person id (never shown to the linker). *)
}

val population :
  ?noise:noise ->
  Rng.t ->
  persons:int ->
  providers:int ->
  max_registrations:int ->
  registration array
(** Each person registers at 1..max_registrations distinct random
    providers, every registration independently corrupted. *)
