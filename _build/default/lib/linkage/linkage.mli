(** Record linkage: clustering per-provider registrations into patient
    identities (the Master-Patient-Index role of [39], [10]).

    The paper positions PRL as complementary to ε-PPI: linkage decides
    {i which registrations are the same patient} across hospitals with
    heterogeneous demographics, and the resulting identity-to-provider
    membership matrix is exactly the input ConstructPPI needs (see
    {!to_membership} and examples/federated_linkage.ml).

    The matcher is a Fellegi-Sunter-style weighted score over field
    similarities with standard blocking (candidate pairs share a last-name
    Soundex code or a birth year), clustered by transitive closure
    (union-find).  Two comparison modes:

    - [Plaintext]: Levenshtein/Dice on the raw fields — the upper bound;
    - [Bloom]: Dice over Bloom-filter field encodings ({!Bloom}), the
      privacy-preserving mode of the cited PRL line — providers never
      exchange plaintext demographics, only filters keyed by a shared
      secret. *)

open Eppi_prelude

type mode = Plaintext | Bloom of Bloom.params

type config = {
  mode : mode;
  match_threshold : float;  (** Score (in [0,1]) at or above which a candidate pair links. *)
}

val default_config : config
(** Plaintext comparison, threshold 0.82. *)

val field_score : config -> Demographic.t -> Demographic.t -> float
(** Weighted similarity: names 50% (bigram Dice), date of birth 30%
    (per-component equality), zip 15% (digit agreement), gender 5%. *)

type linked = {
  entities : int;  (** Distinct patients found. *)
  assignment : int array;  (** registration index -> entity id (dense, from 0). *)
  candidate_pairs : int;  (** Pairs surviving blocking (work measure). *)
}

val link : config -> Demographic.registration array -> linked
(** Block, score, and cluster the registrations. *)

val to_membership : linked -> Demographic.registration array -> providers:int -> Bitmatrix.t
(** The entity-by-provider membership matrix for ConstructPPI. *)

type quality = {
  precision : float;  (** Of the linked pairs, how many are truly the same person. *)
  recall : float;  (** Of the truly-same pairs, how many were linked. *)
  f1 : float;
}

val evaluate : linked -> Demographic.registration array -> quality
(** Pairwise precision/recall against the generator's ground truth. *)
