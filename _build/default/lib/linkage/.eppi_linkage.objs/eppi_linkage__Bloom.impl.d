lib/linkage/bloom.ml: Bitvec Char Eppi_prelude Int64 List Rng String Text
