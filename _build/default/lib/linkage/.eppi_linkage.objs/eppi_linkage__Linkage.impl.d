lib/linkage/linkage.ml: Array Bitmatrix Bloom Demographic Eppi_prelude Fun Hashtbl Option String Text
