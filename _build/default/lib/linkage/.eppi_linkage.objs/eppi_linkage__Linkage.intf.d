lib/linkage/linkage.mli: Bitmatrix Bloom Demographic Eppi_prelude
