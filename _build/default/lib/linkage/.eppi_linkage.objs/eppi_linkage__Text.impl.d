lib/linkage/text.ml: Array Buffer Char Fun Hashtbl List Option String
