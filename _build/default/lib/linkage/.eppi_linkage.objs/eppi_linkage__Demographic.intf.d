lib/linkage/demographic.mli: Eppi_prelude Format Rng
