lib/linkage/text.mli:
