lib/linkage/demographic.ml: Array Bytes Char Eppi_prelude Format List Printf Rng String
