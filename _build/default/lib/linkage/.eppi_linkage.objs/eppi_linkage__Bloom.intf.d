lib/linkage/bloom.mli: Eppi_prelude
