open Eppi_prelude

type mode = Plaintext | Bloom of Bloom.params

type config = {
  mode : mode;
  match_threshold : float;
}

let default_config = { mode = Plaintext; match_threshold = 0.82 }

(* Name similarity under the configured mode. *)
let name_similarity config a b =
  match config.mode with
  | Plaintext -> Text.dice a b
  | Bloom params -> Bloom.dice (Bloom.encode params a) (Bloom.encode params b)

let dob_similarity (y1, m1, d1) (y2, m2, d2) =
  let part a b = if a = b then 1.0 else 0.0 in
  (0.5 *. part y1 y2) +. (0.25 *. part m1 m2) +. (0.25 *. part d1 d2)

let zip_similarity a b =
  let la = String.length a and lb = String.length b in
  if la = 0 || lb = 0 then 0.0
  else begin
    let common = min la lb in
    let agree = ref 0 in
    for i = 0 to common - 1 do
      if a.[i] = b.[i] then incr agree
    done;
    float_of_int !agree /. float_of_int (max la lb)
  end

let field_score config (a : Demographic.t) (b : Demographic.t) =
  let names =
    (name_similarity config a.first b.first +. name_similarity config a.last b.last) /. 2.0
  in
  let dob = dob_similarity a.dob b.dob in
  let zip = zip_similarity a.zip b.zip in
  let gender = if a.gender = b.gender then 1.0 else 0.0 in
  (0.5 *. names) +. (0.3 *. dob) +. (0.15 *. zip) +. (0.05 *. gender)

(* ---- union-find over registration indexes ---- *)

module Uf = struct
  type t = { parent : int array; rank : int array }

  let create n = { parent = Array.init n Fun.id; rank = Array.make n 0 }

  let rec find t i =
    if t.parent.(i) = i then i
    else begin
      let root = find t t.parent.(i) in
      t.parent.(i) <- root;
      root
    end

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then
      if t.rank.(ra) < t.rank.(rb) then t.parent.(ra) <- rb
      else if t.rank.(ra) > t.rank.(rb) then t.parent.(rb) <- ra
      else begin
        t.parent.(rb) <- ra;
        t.rank.(ra) <- t.rank.(ra) + 1
      end
end

type linked = {
  entities : int;
  assignment : int array;
  candidate_pairs : int;
}

(* Blocking: candidates share a last-name Soundex code or a birth year.
   Returns deduplicated index pairs. *)
let candidates (registrations : Demographic.registration array) =
  let by_key = Hashtbl.create 64 in
  let add key i =
    Hashtbl.replace by_key key (i :: Option.value ~default:[] (Hashtbl.find_opt by_key key))
  in
  Array.iteri
    (fun i (r : Demographic.registration) ->
      add ("s:" ^ Text.soundex r.record.last) i;
      let y, _, _ = r.record.dob in
      add ("y:" ^ string_of_int y) i)
    registrations;
  let pairs = Hashtbl.create 256 in
  Hashtbl.iter
    (fun _ members ->
      let members = Array.of_list members in
      let k = Array.length members in
      for a = 0 to k - 1 do
        for b = a + 1 to k - 1 do
          let i = min members.(a) members.(b) and j = max members.(a) members.(b) in
          Hashtbl.replace pairs (i, j) ()
        done
      done)
    by_key;
  pairs

let link config registrations =
  let n = Array.length registrations in
  let uf = Uf.create n in
  let pairs = candidates registrations in
  Hashtbl.iter
    (fun (i, j) () ->
      if field_score config registrations.(i).record registrations.(j).record
         >= config.match_threshold
      then Uf.union uf i j)
    pairs;
  (* Dense entity ids in first-appearance order. *)
  let ids = Hashtbl.create 64 in
  let assignment =
    Array.init n (fun i ->
        let root = Uf.find uf i in
        match Hashtbl.find_opt ids root with
        | Some id -> id
        | None ->
            let id = Hashtbl.length ids in
            Hashtbl.add ids root id;
            id)
  in
  { entities = Hashtbl.length ids; assignment; candidate_pairs = Hashtbl.length pairs }

let to_membership linked registrations ~providers =
  let membership = Bitmatrix.create ~rows:linked.entities ~cols:providers in
  Array.iteri
    (fun i (r : Demographic.registration) ->
      Bitmatrix.set membership ~row:linked.assignment.(i) ~col:r.provider true)
    registrations;
  membership

type quality = {
  precision : float;
  recall : float;
  f1 : float;
}

let evaluate linked registrations =
  let n = Array.length registrations in
  let linked_pairs = ref 0 and true_pairs = ref 0 and correct_pairs = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let same_entity = linked.assignment.(i) = linked.assignment.(j) in
      let same_truth =
        registrations.(i).Demographic.truth = registrations.(j).Demographic.truth
      in
      if same_entity then incr linked_pairs;
      if same_truth then incr true_pairs;
      if same_entity && same_truth then incr correct_pairs
    done
  done;
  let precision =
    if !linked_pairs = 0 then 1.0 else float_of_int !correct_pairs /. float_of_int !linked_pairs
  in
  let recall =
    if !true_pairs = 0 then 1.0 else float_of_int !correct_pairs /. float_of_int !true_pairs
  in
  let f1 =
    if precision +. recall = 0.0 then 0.0
    else 2.0 *. precision *. recall /. (precision +. recall)
  in
  { precision; recall; f1 }
