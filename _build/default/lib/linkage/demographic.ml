open Eppi_prelude

type gender = Female | Male | Other

type t = {
  first : string;
  last : string;
  dob : int * int * int;
  zip : string;
  gender : gender;
}

let pp ppf r =
  let y, m, d = r.dob in
  Format.fprintf ppf "%s %s (%04d-%02d-%02d, %s)" r.first r.last y m d r.zip

type noise = {
  typo_rate : float;
  dob_error_rate : float;
  zip_error_rate : float;
}

let default_noise = { typo_rate = 0.15; dob_error_rate = 0.05; zip_error_rate = 0.1 }

let first_names =
  [|
    "james"; "mary"; "robert"; "patricia"; "john"; "jennifer"; "michael"; "linda";
    "david"; "elizabeth"; "william"; "barbara"; "richard"; "susan"; "joseph"; "jessica";
    "thomas"; "sarah"; "charles"; "karen"; "wei"; "ana"; "fatima"; "yusuf"; "keiko";
  |]

let last_names =
  [|
    "smith"; "johnson"; "williams"; "brown"; "jones"; "garcia"; "miller"; "davis";
    "rodriguez"; "martinez"; "hernandez"; "lopez"; "wilson"; "anderson"; "thomas";
    "taylor"; "moore"; "jackson"; "martin"; "lee"; "nguyen"; "kim"; "patel"; "chen";
  |]

let random_person rng =
  {
    first = first_names.(Rng.int rng (Array.length first_names));
    last = last_names.(Rng.int rng (Array.length last_names));
    dob = (1930 + Rng.int rng 90, 1 + Rng.int rng 12, 1 + Rng.int rng 28);
    zip = Printf.sprintf "%05d" (10000 + Rng.int rng 89999);
    gender = (match Rng.int rng 3 with 0 -> Female | 1 -> Male | _ -> Other);
  }

(* One random edit: substitution, deletion, insertion or transposition. *)
let typo rng s =
  let len = String.length s in
  if len = 0 then s
  else begin
    let letter () = Char.chr (Char.code 'a' + Rng.int rng 26) in
    match Rng.int rng 4 with
    | 0 ->
        let i = Rng.int rng len in
        String.mapi (fun j c -> if j = i then letter () else c) s
    | 1 ->
        let i = Rng.int rng len in
        String.sub s 0 i ^ String.sub s (i + 1) (len - i - 1)
    | 2 ->
        let i = Rng.int rng (len + 1) in
        String.sub s 0 i ^ String.make 1 (letter ()) ^ String.sub s i (len - i)
    | _ ->
        if len < 2 then s
        else begin
          let i = Rng.int rng (len - 1) in
          let b = Bytes.of_string s in
          let tmp = Bytes.get b i in
          Bytes.set b i (Bytes.get b (i + 1));
          Bytes.set b (i + 1) tmp;
          Bytes.to_string b
        end
  end

let slip_digit rng s =
  let len = String.length s in
  if len = 0 then s
  else begin
    let i = Rng.int rng len in
    String.mapi (fun j c -> if j = i then Char.chr (Char.code '0' + Rng.int rng 10) else c) s
  end

let corrupt ?(noise = default_noise) rng person =
  let first = if Rng.bernoulli rng noise.typo_rate then typo rng person.first else person.first in
  let last = if Rng.bernoulli rng noise.typo_rate then typo rng person.last else person.last in
  let dob =
    if Rng.bernoulli rng noise.dob_error_rate then begin
      let y, m, d = person.dob in
      match Rng.int rng 3 with
      | 0 -> (y + Rng.int_in rng (-1) 1, m, d)
      | 1 -> (y, (if m = 12 then 11 else m + 1), d)
      | _ -> (y, m, if d = 28 then 27 else d + 1)
    end
    else person.dob
  in
  let zip = if Rng.bernoulli rng noise.zip_error_rate then slip_digit rng person.zip else person.zip in
  { person with first; last; dob; zip }

type registration = {
  provider : int;
  record : t;
  truth : int;
}

let population ?noise rng ~persons ~providers ~max_registrations =
  if persons <= 0 || providers <= 0 || max_registrations <= 0 then
    invalid_arg "Demographic.population: empty parameters";
  let out = ref [] in
  for truth = 0 to persons - 1 do
    let person = random_person rng in
    let visits = 1 + Rng.int rng (min max_registrations providers) in
    let chosen = Rng.sample_without_replacement rng ~k:visits ~n:providers in
    Array.iter
      (fun provider -> out := { provider; record = corrupt ?noise rng person; truth } :: !out)
      chosen
  done;
  Array.of_list (List.rev !out)
