open Eppi_prelude

type privacy_level = Unleaked | E_private | No_guarantee | No_protect

let level_name = function
  | Unleaked -> "UNLEAKED"
  | E_private -> "e-PRIVATE"
  | No_guarantee -> "NO-GUARANTEE"
  | No_protect -> "NO-PROTECT"

let simulate_primary rng ~membership ~published ~owner ~trials =
  if trials <= 0 then invalid_arg "Attack.simulate_primary: trials must be positive";
  let row = Bitmatrix.row published owner in
  let positives = Array.of_list (Bitvec.to_index_list row) in
  if Array.length positives = 0 then 0.0
  else begin
    let hits = ref 0 in
    for _ = 1 to trials do
      let target = positives.(Rng.int rng (Array.length positives)) in
      if Bitmatrix.get membership ~row:owner ~col:target then incr hits
    done;
    float_of_int !hits /. float_of_int trials
  end

let primary_confidence ~membership ~published ~owner =
  Metrics.attacker_confidence ~membership ~published ~owner

type common_attack_result = {
  suspected : int list;
  truly_common : int;
  confidence : float;
}

let common_identity_attack ~membership ~published ~sigma_threshold =
  let n = Bitmatrix.rows membership in
  let m = Bitmatrix.cols membership in
  let cutoff = sigma_threshold *. float_of_int m in
  let suspected = ref [] in
  let truly_common = ref 0 in
  for j = n - 1 downto 0 do
    if float_of_int (Bitmatrix.row_count published j) >= cutoff then begin
      suspected := j :: !suspected;
      if float_of_int (Bitmatrix.row_count membership j) >= cutoff then incr truly_common
    end
  done;
  let count = List.length !suspected in
  {
    suspected = !suspected;
    truly_common = !truly_common;
    confidence = (if count = 0 then 0.0 else float_of_int !truly_common /. float_of_int count);
  }

let colluding_confidence ~membership ~published ~owner ~colluders =
  let m = Bitmatrix.cols membership in
  let is_colluder = Array.make m false in
  List.iter
    (fun p ->
      if p < 0 || p >= m then invalid_arg "Attack.colluding_confidence: bad provider id";
      is_colluder.(p) <- true)
    colluders;
  let outside = ref 0 and true_outside = ref 0 in
  Bitvec.iter_set
    (fun p ->
      if not is_colluder.(p) then begin
        incr outside;
        if Bitmatrix.get membership ~row:owner ~col:p then incr true_outside
      end)
    (Bitmatrix.row published owner);
  if !outside = 0 then 0.0 else float_of_int !true_outside /. float_of_int !outside

let intersection_attack ~membership ~published_list ~owner =
  match published_list with
  | [] -> invalid_arg "Attack.intersection_attack: no published versions"
  | first :: rest ->
      let row =
        List.fold_left
          (fun acc published -> Bitvec.inter acc (Bitmatrix.row published owner))
          (Bitvec.copy (Bitmatrix.row first owner))
          rest
      in
      let positives = Bitvec.count row in
      if positives = 0 then 0.0
      else begin
        let true_positives =
          Bitvec.fold_set
            (fun acc p -> if Bitmatrix.get membership ~row:owner ~col:p then acc + 1 else acc)
            0 row
        in
        float_of_int true_positives /. float_of_int positives
      end

let classify ~guarantee ~worst_confidence ~epsilon =
  match guarantee with
  | Some bound when bound <= 1.0 -. epsilon +. 1e-9 -> E_private
  | Some _ | None -> if worst_confidence >= 1.0 -. 1e-9 then No_protect else No_guarantee
