(** Randomized publication (paper Eq. 2).

    Each provider publishes its private membership bit for every identity:
    a 1 is always published truthfully (so query recall stays 100%), and a 0
    flips to a published 1 with the identity's probability β.  Publication is
    a {i row} operation here because the matrices are stored owner-major, but
    the draws are independent per (provider, identity) pair exactly as if
    each provider flipped its own coins. *)

open Eppi_prelude

val publish_row : Rng.t -> beta:float -> Bitvec.t -> Bitvec.t
(** Fresh published row: the input row's 1s plus Bernoulli(β) noise on the
    0s.  β is clamped to [0, 1] (common identities use β = 1, which yields
    an all-ones row). *)

val publish_matrix : Rng.t -> betas:float array -> Bitmatrix.t -> Bitmatrix.t
(** Apply {!publish_row} to every owner row with its own β.
    @raise Invalid_argument if [betas] length differs from the row count. *)

val publish_matrix_with_floors :
  Rng.t -> betas:float array -> floors:float array -> Bitmatrix.t -> Bitmatrix.t
(** Provider-personalized extension (beyond the paper, which personalizes
    per owner only): cell (owner j, provider p) flips at rate
    [max betas.(j) floors.(p)].  A sensitive provider (the paper's
    "women's health center" motivation) can thus set a floor on the noise
    that covers {i its} column regardless of its patients' choices.  Floors
    only add noise, so every per-owner fp guarantee is preserved; the cost
    is extra search traffic toward noisy columns.
    @raise Invalid_argument on length mismatches or floors outside [0, 1]. *)

val false_positives : Rng.t -> beta:float -> negatives:int -> int
(** Sampled number of flipped zeros among [negatives] negative providers —
    the fast path the parameter sweeps use instead of materializing rows
    (binomial draw; exact same distribution as {!publish_row} restricted to
    counting). *)
