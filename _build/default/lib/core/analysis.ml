
let trial_success rng ~beta ~frequency ~epsilon ~m =
  if frequency < 0 || frequency > m then invalid_arg "Analysis.trial_success: bad frequency";
  let negatives = m - frequency in
  if frequency = 0 then true (* empty rows disclose nothing *)
  else if beta >= 1.0 then
    float_of_int negatives /. float_of_int m >= epsilon
  else begin
    let fp = Publish.false_positives rng ~beta ~negatives in
    float_of_int fp /. float_of_int (fp + frequency) >= epsilon
  end

let empirical_success_with_beta rng ~beta ~frequency ~epsilon ~m ~trials =
  if trials <= 0 then invalid_arg "Analysis: trials must be positive";
  let ok = ref 0 in
  for _ = 1 to trials do
    if trial_success rng ~beta ~frequency ~epsilon ~m then incr ok
  done;
  float_of_int !ok /. float_of_int trials

let empirical_success rng ~policy ~frequency ~epsilon ~m ~trials =
  let sigma = float_of_int frequency /. float_of_int m in
  let beta = Policy.beta policy ~sigma ~epsilon ~m in
  empirical_success_with_beta rng ~beta ~frequency ~epsilon ~m ~trials

let log_factorial =
  (* Memoized log n! via lgamma-free accumulation. *)
  let cache = ref [| 0.0 |] in
  fun n ->
    let c = !cache in
    if n < Array.length c then c.(n)
    else begin
      let bigger = Array.make (n + 1) 0.0 in
      Array.blit c 0 bigger 0 (Array.length c);
      for i = Array.length c to n do
        bigger.(i) <- bigger.(i - 1) +. log (float_of_int i)
      done;
      cache := bigger;
      bigger.(n)
    end

let log_binomial_pmf ~n ~p k =
  log_factorial n -. log_factorial k
  -. log_factorial (n - k)
  +. (float_of_int k *. log p)
  +. (float_of_int (n - k) *. log (1.0 -. p))

let exact_success ~beta ~frequency ~epsilon ~m =
  if frequency < 0 || frequency > m then invalid_arg "Analysis.exact_success: bad frequency";
  if frequency = 0 then 1.0
  else if beta >= 1.0 then
    if float_of_int (m - frequency) /. float_of_int m >= epsilon then 1.0 else 0.0
  else if epsilon <= 0.0 then 1.0
  else if epsilon >= 1.0 then 0.0
  else if beta <= 0.0 then 0.0
  else begin
    (* fp = X/(X+f) >= eps  <=>  X >= f eps/(1-eps). *)
    let negatives = m - frequency in
    let threshold =
      int_of_float
        (Float.ceil (float_of_int frequency *. epsilon /. (1.0 -. epsilon) -. 1e-12))
    in
    if threshold > negatives then 0.0
    else begin
      let acc = ref 0.0 in
      for k = threshold to negatives do
        acc := !acc +. exp (log_binomial_pmf ~n:negatives ~p:beta k)
      done;
      Float.min 1.0 !acc
    end
  end

let expected_false_positive_rate ~beta ~frequency ~m =
  let beta = Float.min beta 1.0 in
  let noise = float_of_int (m - frequency) *. beta in
  if noise +. float_of_int frequency = 0.0 then 1.0
  else noise /. (noise +. float_of_int frequency)

let expected_query_cost ~beta ~frequency ~m =
  let beta = Float.min beta 1.0 in
  float_of_int frequency +. (float_of_int (m - frequency) *. beta)
