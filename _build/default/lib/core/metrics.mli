(** Privacy metrics (paper Section II-C).

    The per-owner disclosure metric is the attacker's expected confidence
    Pr[M(i,j)=1 | M'(i,j)=1] = 1 - fp_j, where fp_j is the false-positive
    rate of owner j's published row.  The ε-PRIVATE requirement is
    fp_j >= ε_j, and the evaluation's headline number is the {i success
    ratio}: the fraction of owners meeting their requirement.

    Rows with no true positive (σ = 0) disclose nothing; their fp is defined
    as 1 so they always count as successes. *)

open Eppi_prelude

val false_positive_rate : membership:Bitmatrix.t -> published:Bitmatrix.t -> owner:int -> float
(** fp_j = (published positives that are false) / (published positives);
    1.0 when the row has no true positive. *)

val attacker_confidence : membership:Bitmatrix.t -> published:Bitmatrix.t -> owner:int -> float
(** 1 - fp_j. *)

val owner_success :
  membership:Bitmatrix.t -> published:Bitmatrix.t -> epsilon:float -> owner:int -> bool
(** fp_j >= ε_j. *)

val success_ratio :
  membership:Bitmatrix.t -> published:Bitmatrix.t -> epsilons:float array -> float
(** Fraction of owners achieving their requirement.
    @raise Invalid_argument on dimension mismatch. *)

val success_ratio_for :
  membership:Bitmatrix.t -> published:Bitmatrix.t -> epsilons:float array -> owners:int list -> float
(** Success ratio restricted to a subset of owners (the sweeps bucket owners
    by frequency). *)
