(** β-calculation policies (paper Section III-B).

    Given an identity with relative frequency sigma and privacy degree
    epsilon, a policy chooses the probability β with which each negative
    provider flips its 0 to a published 1.  The three policies are the
    paper's:

    - {b Basic} (Eq. 3): β_b = [(1/σ - 1)(1/ε - 1)]⁻¹, which makes the
      {i expected} false-positive rate hit ε — so the privacy requirement is
      met only ~50% of the time.
    - {b Incremented expectation} (Eq. 4): β_b + Δ for a configured Δ; better
      odds but no direct control of the success ratio.
    - {b Chernoff} (Eq. 5 / Theorem 3.1): β_b + G + sqrt(G² + 2β_bG) with
      G = ln(1/(1-γ)) / ((1-σ)m), guaranteeing success ratio at least γ.

    A raw β of 1 or more marks the identity as {i common}: no amount of
    noise from the m(1-σ) negative providers can reach the required
    false-positive rate, and the identity must enter the mixing path
    (see {!Mixing}).

    Conventions at the edges: ε = 0 needs no noise (β = 0); σ = 0 (an
    identity stored nowhere) also yields β = 0 — an empty row discloses
    nothing and {!Metrics} treats it as trivially private. *)

type t =
  | Basic
  | Inc_exp of float  (** Δ, e.g. 0.01 or 0.02 in the paper's experiments. *)
  | Chernoff of float  (** γ, the target success ratio, e.g. 0.9. *)

val name : t -> string
(** e.g. ["basic"], ["inc-exp(0.02)"], ["chernoff(0.90)"]. *)

val beta_basic : sigma:float -> epsilon:float -> float
(** Eq. 3.  Result may exceed 1 (common identity); never negative.
    @raise Invalid_argument if sigma or epsilon is outside [0, 1]. *)

val beta : t -> sigma:float -> epsilon:float -> m:int -> float
(** Raw β* for the policy — {i uncapped}, so a value >= 1 signals a common
    identity. *)

val is_common : t -> sigma:float -> epsilon:float -> m:int -> bool
(** β* >= 1. *)

val sigma_threshold : t -> epsilon:float -> m:int -> float
(** The frequency σ' above which the policy yields β* >= 1 (the
    common-identity threshold used by the secure CountBelow stage).  Solved
    by bisection; exact for Basic (σ' = 1 - ε). *)

val analytic_success_bound : beta:float -> sigma:float -> epsilon:float -> m:int -> float
(** Chernoff lower bound on Pr[fp >= ε] when publishing with [beta]
    (Theorem 3.1's Eq. 11); 0 when [beta] does not exceed the basic β. *)
