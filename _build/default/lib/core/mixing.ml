let lambda ~xi ~n_common ~n_total =
  if xi < 0.0 || xi >= 1.0 then invalid_arg "Mixing.lambda: xi out of [0, 1)";
  if n_common < 0 || n_total < 0 || n_common > n_total then
    invalid_arg "Mixing.lambda: bad counts";
  if n_common = 0 then 0.0
  else if n_common = n_total then 1.0
  else begin
    let c = float_of_int n_common and rest = float_of_int (n_total - n_common) in
    Float.min 1.0 (xi /. (1.0 -. xi) *. (c /. rest))
  end

let decoy_fraction ~lambda ~n_common ~n_total =
  if n_common = 0 then 1.0
  else begin
    let decoys = lambda *. float_of_int (n_total - n_common) in
    decoys /. (decoys +. float_of_int n_common)
  end

let mix rng ~lambda = Eppi_prelude.Rng.bernoulli rng lambda

type mode = Bernoulli | Exact_count

let mode_name = function Bernoulli -> "bernoulli" | Exact_count -> "exact-count"

let select_decoys rng ~mode ~lambda ~candidates =
  let n = Array.length candidates in
  match mode with
  | Bernoulli -> Array.map (fun _ -> mix rng ~lambda) candidates
  | Exact_count ->
      let k = min n (int_of_float (Float.ceil (lambda *. float_of_int n))) in
      let chosen = Eppi_prelude.Rng.sample_without_replacement rng ~k ~n in
      let mask = Array.make n false in
      Array.iter (fun slot -> mask.(slot) <- true) chosen;
      mask
