open Eppi_prelude

let clamp beta = if beta < 0.0 then 0.0 else if beta > 1.0 then 1.0 else beta

let publish_row rng ~beta row =
  let beta = clamp beta in
  let m = Bitvec.length row in
  let published = Bitvec.copy row in
  if beta >= 1.0 then Bitvec.fill published true
  else if beta > 0.0 then
    for p = 0 to m - 1 do
      if (not (Bitvec.get row p)) && Rng.bernoulli rng beta then Bitvec.set published p
    done;
  published

let publish_matrix rng ~betas membership =
  if Array.length betas <> Bitmatrix.rows membership then
    invalid_arg "Publish.publish_matrix: betas length mismatch";
  Bitmatrix.map_rows (fun j row -> publish_row rng ~beta:betas.(j) row) membership

let publish_matrix_with_floors rng ~betas ~floors membership =
  let n = Bitmatrix.rows membership and m = Bitmatrix.cols membership in
  if Array.length betas <> n then
    invalid_arg "Publish.publish_matrix_with_floors: betas length mismatch";
  if Array.length floors <> m then
    invalid_arg "Publish.publish_matrix_with_floors: floors length mismatch";
  Array.iter
    (fun f ->
      if f < 0.0 || f > 1.0 then
        invalid_arg "Publish.publish_matrix_with_floors: floor out of [0, 1]")
    floors;
  Bitmatrix.map_rows
    (fun j row ->
      let beta = clamp betas.(j) in
      let published = Bitvec.copy row in
      for p = 0 to m - 1 do
        let rate = Float.max beta floors.(p) in
        if (not (Bitvec.get row p)) && Rng.bernoulli rng rate then Bitvec.set published p
      done;
      published)
    membership

let false_positives rng ~beta ~negatives =
  if negatives < 0 then invalid_arg "Publish.false_positives: negative count";
  Sampling.binomial rng ~n:negatives ~p:(clamp beta)
