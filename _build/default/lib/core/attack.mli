(** Attack implementations and privacy-degree classification (Section II-B).

    Two attacks from the threat model:

    - {b Primary attack}: pick an owner and one of the providers its
      published row marks positive, and claim the membership is real.  The
      attacker's best strategy against a uniform row is a uniform pick, so
      the expected confidence is exactly 1 - fp_j; [simulate_primary]
      measures it empirically.
    - {b Common-identity attack}: read apparent frequencies off the public
      index, pick the identities that look common, and claim they are truly
      common (once an identity is known common, {i any} provider is a true
      positive).  Against an index that reveals true frequencies this
      succeeds with certainty; against ε-PPI the mixed decoys bound the
      confidence by 1 - ξ.

    [classify] turns a measured confidence into the paper's qualitative
    degrees for the Table II reproduction. *)

open Eppi_prelude

type privacy_level = Unleaked | E_private | No_guarantee | No_protect

val level_name : privacy_level -> string

val simulate_primary :
  Rng.t -> membership:Bitmatrix.t -> published:Bitmatrix.t -> owner:int -> trials:int -> float
(** Empirical success rate of [trials] independent primary attacks on the
    owner (uniform choice among published positives).  A row with no
    published positive cannot be attacked: returns 0. *)

val primary_confidence : membership:Bitmatrix.t -> published:Bitmatrix.t -> owner:int -> float
(** Exact expected confidence (= 1 - fp_j). *)

type common_attack_result = {
  suspected : int list;  (** Identities the attacker flags as common. *)
  truly_common : int;  (** How many of those are truly common. *)
  confidence : float;  (** truly_common / |suspected|; 0 when no suspects. *)
}

val common_identity_attack :
  membership:Bitmatrix.t ->
  published:Bitmatrix.t ->
  sigma_threshold:float ->
  common_attack_result
(** The attacker flags every identity whose {i apparent} frequency is at
    least [sigma_threshold] * m; ground truth uses the same threshold on
    true frequencies. *)

val colluding_confidence :
  membership:Bitmatrix.t -> published:Bitmatrix.t -> owner:int -> colluders:int list -> float
(** The colluding-providers refinement the paper defers to its technical
    report: the attacker controls the [colluders] and knows their true
    membership bits, so she discounts them from the published row and
    attacks only the remaining positives.  Returns her expected confidence —
    the fraction of true positives among the published positives {i outside}
    the colluding set (0 when none remain).  Collusion can only help her:
    the result is at least {!primary_confidence} restricted to the same row
    whenever the row extends beyond the colluders. *)

val intersection_attack :
  membership:Bitmatrix.t -> published_list:Bitmatrix.t list -> owner:int -> float
(** Why the index must stay static (Section III-C: "ǫ-PPI is fully
    resistant to repeated attacks … because the ǫ-PPI is static"): if the
    network {i republished} with fresh randomness, noise would differ
    between versions while true positives persist, so intersecting the
    owner's rows across versions strips the noise.  Returns the attacker's
    confidence against the intersected row.
    @raise Invalid_argument on an empty list. *)

val classify :
  guarantee:float option -> worst_confidence:float -> epsilon:float -> privacy_level
(** Map measurements to a degree: [guarantee = Some bound] means the system
    proves confidence <= bound; ε-PRIVATE requires bound <= 1 - ε.  With no
    proven bound, a worst-case confidence of 1.0 is NO-PROTECT, anything
    else NO-GUARANTEE. *)
