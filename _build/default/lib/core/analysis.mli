(** Fast per-identity success-ratio estimation for the parameter sweeps.

    The Figs. 4-5 experiments ask, for a grid of (frequency, ε, m, policy)
    points, how often randomized publication achieves fp >= ε.  Because each
    negative provider flips independently, the false-positive count is a
    single binomial draw — no matrix needs to be materialized.  These
    estimators are distribution-identical to running {!Construct.run} on a
    matrix and reading {!Metrics.success_ratio} for the same identity (a
    property the test suite checks). *)

open Eppi_prelude

val trial_success : Rng.t -> beta:float -> frequency:int -> epsilon:float -> m:int -> bool
(** One publication trial: draw the false positives among [m - frequency]
    negatives at rate [beta] and test fp >= ε.  β >= 1 publishes everywhere
    (fp = 1 - σ). *)

val empirical_success :
  Rng.t -> policy:Policy.t -> frequency:int -> epsilon:float -> m:int -> trials:int -> float
(** Fraction of successful trials with the policy's β (the paper's
    success-ratio metric restricted to one identity class). *)

val empirical_success_with_beta :
  Rng.t -> beta:float -> frequency:int -> epsilon:float -> m:int -> trials:int -> float

val exact_success : beta:float -> frequency:int -> epsilon:float -> m:int -> float
(** Closed-form Pr[fp >= ε]: the binomial upper-tail
    Pr[X >= ceil(f ε / (1-ε))] for X ~ Binomial(m-f, β), computed in
    log-space (no sampling).  Sandwiches the estimators: it upper-bounds
    Theorem 3.1's Chernoff lower bound and matches {!empirical_success}
    within sampling error (both tested). *)

val expected_false_positive_rate : beta:float -> frequency:int -> m:int -> float
(** E[fp] = (m - f)β / ((m - f)β + f): the search-overhead driver. *)

val expected_query_cost : beta:float -> frequency:int -> m:int -> float
(** Expected providers returned by QueryPPI: f + (m - f)β. *)
