open Eppi_prelude

let false_positive_rate ~membership ~published ~owner =
  let true_count = Bitmatrix.row_count membership owner in
  if true_count = 0 then 1.0
  else begin
    let published_count = Bitmatrix.row_count published owner in
    (* Truthful publication guarantees published >= true. *)
    float_of_int (published_count - true_count) /. float_of_int published_count
  end

let attacker_confidence ~membership ~published ~owner =
  1.0 -. false_positive_rate ~membership ~published ~owner

let owner_success ~membership ~published ~epsilon ~owner =
  false_positive_rate ~membership ~published ~owner >= epsilon

let success_ratio_for ~membership ~published ~epsilons ~owners =
  match owners with
  | [] -> invalid_arg "Metrics.success_ratio_for: empty owner set"
  | _ ->
      let total = List.length owners in
      let ok =
        List.fold_left
          (fun acc j ->
            if owner_success ~membership ~published ~epsilon:epsilons.(j) ~owner:j then acc + 1
            else acc)
          0 owners
      in
      float_of_int ok /. float_of_int total

let success_ratio ~membership ~published ~epsilons =
  let n = Bitmatrix.rows membership in
  if Array.length epsilons <> n || Bitmatrix.rows published <> n then
    invalid_arg "Metrics.success_ratio: dimension mismatch";
  success_ratio_for ~membership ~published ~epsilons ~owners:(List.init n Fun.id)
