(** Identity mixing against the common-identity attack (Section III-B.2).

    A common identity's row cannot be hidden by false positives — its true
    frequency shows.  ε-PPI instead hides {i which} apparently-common
    identities are truly common: each non-common identity is exaggerated to
    β = 1 with probability λ (Eq. 6), so an attacker picking an
    apparently-common identity faces a pool where the fraction of decoys is
    at least ξ (Eq. 7):

    {v λ >= ξ/(1-ξ) · C / (n - C) v}

    with C the number of true common identities, n the identity count and
    ξ the required decoy fraction — we set ξ to the maximum ε among the
    common identities, which bounds the attacker's confidence by 1 - ξ
    exactly as the per-identity guarantee demands. *)

val lambda : xi:float -> n_common:int -> n_total:int -> float
(** Eq. 7, clamped into [0, 1].  Zero when there are no common identities.
    @raise Invalid_argument if [xi] is outside [0, 1), counts are negative,
    or [n_common > n_total]. *)

val decoy_fraction : lambda:float -> n_common:int -> n_total:int -> float
(** Expected fraction of decoys among mixed identities for a given λ — the
    quantity Eq. 7 bounds below by ξ. *)

val mix : Eppi_prelude.Rng.t -> lambda:float -> bool
(** One mixing draw for a non-common identity. *)

(** How decoys are selected among the non-common identities.

    [Bernoulli] is the paper's Eq. 6: each non-common identity is
    independently exaggerated with probability λ, so the ξ decoy-fraction
    guarantee holds {i in expectation} — an unlucky draw can leave the
    common identities under-protected (the mixing ablation in the bench
    makes this visible).  [Exact_count] is this repository's extension: it
    plants exactly ⌈λ(n-C)⌉ decoys chosen uniformly at random, which holds
    the bound on every draw at identical expected search cost. *)
type mode = Bernoulli | Exact_count

val mode_name : mode -> string

val select_decoys :
  Eppi_prelude.Rng.t -> mode:mode -> lambda:float -> candidates:int array -> bool array
(** [select_decoys rng ~mode ~lambda ~candidates] returns, aligned with
    [candidates] (the indices of non-common identities), which of them are
    exaggerated to β = 1. *)
