(** Centralized reference construction of an ε-PPI (paper Section III).

    This path computes everything from the plaintext membership matrix — it
    is the functional specification the distributed secure protocol
    ({!Eppi_protocol} in lib/protocol) must agree with, and the engine behind
    the simulation-based effectiveness experiments (Figs. 4-5), mirroring how
    the paper's first experiment set is itself a simulation.

    Pipeline per identity: raw β* from the policy → common iff β* >= 1 →
    ξ = max ε over common identities → λ from Eq. 7 → mixing draw for
    non-common identities (Eq. 6) → randomized publication. *)

open Eppi_prelude

type result = {
  index : Index.t;  (** The published ε-PPI. *)
  betas : float array;  (** Final per-identity β (1.0 for common and mixed). *)
  raw_betas : float array;  (** β* before mixing, +∞ possible. *)
  common : bool array;  (** β* >= 1. *)
  mixed : bool array;  (** Non-common identities exaggerated to β = 1. *)
  lambda : float;
  xi : float;  (** Required decoy fraction: max ε over common identities. *)
}

type result_betas = {
  final : float array;
  raw : float array;
  is_common : bool array;
  is_mixed : bool array;
  lam : float;
  xi_value : float;
}

val plan_betas :
  ?mixing:Mixing.mode ->
  policy:Policy.t ->
  epsilons:float array ->
  frequencies:int array ->
  m:int ->
  Rng.t ->
  result_betas
(** The β-calculation phase alone (no matrix needed): exactly the
    computation the distributed protocol performs, factored out so the
    protocol tests can diff the two implementations. *)

val run :
  ?mixing:Mixing.mode ->
  ?provider_floors:float array ->
  Rng.t ->
  membership:Bitmatrix.t ->
  epsilons:float array ->
  policy:Policy.t ->
  result
(** Full construction.  The matrix is owner-major (rows = owners, columns =
    providers).  [mixing] defaults to the paper's [Bernoulli] mode
    (see {!Mixing.mode}).  [provider_floors], when given, applies the
    provider-personalized noise extension of
    {!Publish.publish_matrix_with_floors}.
    @raise Invalid_argument on dimension mismatches or epsilons outside
    [0, 1]. *)

val extend :
  Rng.t ->
  previous:result ->
  membership:Bitmatrix.t ->
  epsilons:float array ->
  policy:Policy.t ->
  result
(** Append-only growth — an extension beyond the paper, which treats the
    index as fully static.  [membership]/[epsilons] cover the whole
    population: the first [Index.owners previous.index] rows are the
    existing owners and are republished {i bit-for-bit unchanged} (so the
    intersection attack of {!Attack.intersection_attack} gains nothing on
    them), and only the appended owners are priced, mixed and randomized.
    The mixing ratio for the new arrivals is chosen so the {i overall}
    decoy fraction still meets ξ, counting the decoys already published.
    @raise Invalid_argument if the population shrinks, the provider count
    changes, or an existing owner's memberships changed (a changed row
    cannot be republished without breaking the static-index property —
    rebuild from scratch instead). *)
