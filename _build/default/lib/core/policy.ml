type t = Basic | Inc_exp of float | Chernoff of float

let name = function
  | Basic -> "basic"
  | Inc_exp delta -> Printf.sprintf "inc-exp(%.2f)" delta
  | Chernoff gamma -> Printf.sprintf "chernoff(%.2f)" gamma

let check_unit label v =
  if v < 0.0 || v > 1.0 then invalid_arg (Printf.sprintf "Policy: %s out of [0, 1]" label)

let beta_basic ~sigma ~epsilon =
  check_unit "sigma" sigma;
  check_unit "epsilon" epsilon;
  if epsilon <= 0.0 || sigma <= 0.0 then 0.0
  else if sigma >= 1.0 || epsilon >= 1.0 then infinity
  else
    (* Eq. 3: β_b = [(1/σ - 1)(1/ε - 1)]⁻¹ *)
    1.0 /. (((1.0 /. sigma) -. 1.0) *. ((1.0 /. epsilon) -. 1.0))

let beta policy ~sigma ~epsilon ~m =
  if m <= 0 then invalid_arg "Policy.beta: m must be positive";
  let bb = beta_basic ~sigma ~epsilon in
  match policy with
  | Basic -> bb
  | Inc_exp delta -> if bb = 0.0 then 0.0 else bb +. delta
  | Chernoff gamma ->
      check_unit "gamma" gamma;
      if bb = 0.0 then 0.0
      else if sigma >= 1.0 then infinity
      else begin
        (* Eq. 5: β_c = β_b + G + sqrt(G² + 2 β_b G). *)
        let g = log (1.0 /. (1.0 -. gamma)) /. ((1.0 -. sigma) *. float_of_int m) in
        bb +. g +. sqrt ((g *. g) +. (2.0 *. bb *. g))
      end

let is_common policy ~sigma ~epsilon ~m = beta policy ~sigma ~epsilon ~m >= 1.0

let sigma_threshold policy ~epsilon ~m =
  check_unit "epsilon" epsilon;
  if epsilon <= 0.0 then 1.0
  else
    match policy with
    | Basic ->
        (* β_b = 1 at exactly σ = 1 - ε. *)
        1.0 -. epsilon
    | Inc_exp _ | Chernoff _ ->
        (* β* is monotone increasing in σ: bisect for β*(σ') = 1. *)
        let rec bisect lo hi iters =
          if iters = 0 then (lo +. hi) /. 2.0
          else begin
            let mid = (lo +. hi) /. 2.0 in
            if beta policy ~sigma:mid ~epsilon ~m >= 1.0 then bisect lo mid (iters - 1)
            else bisect mid hi (iters - 1)
          end
        in
        if beta policy ~sigma:0.0 ~epsilon ~m >= 1.0 then 0.0 else bisect 0.0 1.0 60

let analytic_success_bound ~beta ~sigma ~epsilon ~m =
  check_unit "sigma" sigma;
  check_unit "epsilon" epsilon;
  if beta >= 1.0 then 1.0
  else begin
    let bb = beta_basic ~sigma ~epsilon in
    if beta <= bb || beta <= 0.0 then 0.0
    else begin
      (* Eq. 11: pp >= 1 - exp(-δ² m (1-σ) β / 2) with δ = 1 - β_b/β. *)
      let delta = 1.0 -. (bb /. beta) in
      1.0 -. exp (-.(delta *. delta) *. float_of_int m *. (1.0 -. sigma) *. beta /. 2.0)
    end
  end
