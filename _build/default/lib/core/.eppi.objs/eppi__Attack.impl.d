lib/core/attack.ml: Array Bitmatrix Bitvec Eppi_prelude List Metrics Rng
