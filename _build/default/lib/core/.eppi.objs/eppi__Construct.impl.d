lib/core/construct.ml: Array Bitmatrix Bitvec Eppi_prelude Float Fun Index List Mixing Policy Publish
