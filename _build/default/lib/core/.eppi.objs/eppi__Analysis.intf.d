lib/core/analysis.mli: Eppi_prelude Policy Rng
