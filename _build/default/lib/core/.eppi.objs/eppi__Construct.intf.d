lib/core/construct.mli: Bitmatrix Eppi_prelude Index Mixing Policy Rng
