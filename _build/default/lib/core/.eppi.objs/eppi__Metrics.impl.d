lib/core/metrics.ml: Array Bitmatrix Eppi_prelude Fun List
