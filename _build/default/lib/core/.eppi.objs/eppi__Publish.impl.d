lib/core/publish.ml: Array Bitmatrix Bitvec Eppi_prelude Float Rng Sampling
