lib/core/publish.mli: Bitmatrix Bitvec Eppi_prelude Rng
