lib/core/mixing.mli: Eppi_prelude
