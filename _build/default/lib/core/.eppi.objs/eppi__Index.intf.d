lib/core/index.mli: Bitmatrix Eppi_prelude
