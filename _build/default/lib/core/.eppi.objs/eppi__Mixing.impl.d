lib/core/mixing.ml: Array Eppi_prelude Float
