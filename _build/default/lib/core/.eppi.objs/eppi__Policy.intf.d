lib/core/policy.mli:
