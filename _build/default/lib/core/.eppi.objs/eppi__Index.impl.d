lib/core/index.ml: Bitmatrix Bitvec Buffer Eppi_prelude List Printf Scanf String
