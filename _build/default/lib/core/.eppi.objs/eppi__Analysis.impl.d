lib/core/analysis.ml: Array Float Policy Publish
