lib/core/metrics.mli: Bitmatrix Eppi_prelude
