lib/core/attack.mli: Bitmatrix Eppi_prelude Rng
