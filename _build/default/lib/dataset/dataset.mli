(** Synthetic information-network datasets.

    The paper's effectiveness experiments run on a distributed document
    collection (TREC-WT10g split into 2,500-25,000 "collections" treated as
    providers, with document source URLs as owner identities).  That corpus
    is not redistributable, and the Section III analysis depends on the
    membership matrix only through each identity's provider frequency
    sigma_j and the provider count m, so this generator produces matrices
    with a controlled frequency profile instead: a Zipf-like tail of rare
    identities, a configurable band of mid-frequency identities and an
    optional planted set of common (near-ubiquitous) identities for the
    common-identity-attack experiments.  See DESIGN.md, "Substitutions". *)

open Eppi_prelude

type t = {
  providers : int;  (** m *)
  owners : int;  (** n *)
  membership : Bitmatrix.t;  (** rows = owners, cols = providers: M^T *)
  epsilons : float array;  (** per-owner privacy degree, length n *)
}

val frequency : t -> int -> int
(** [frequency t j] is the number of providers holding owner [j]'s records
    (sigma_j * m in the paper's notation). *)

val sigma : t -> int -> float
(** Relative frequency sigma_j in [0, 1]. *)

val member : t -> provider:int -> owner:int -> bool

(** Generator configuration. *)
type profile = {
  zipf_exponent : float;  (** Skew of the rare-identity tail. *)
  max_rare_frequency : int;
      (** Cap on the frequency of tail identities (paper Fig. 4a sweeps
          frequencies up to ~500 of 10,000 providers). *)
  common_fraction : float;  (** Fraction of owners planted as common. *)
  common_min_sigma : float;  (** Minimum sigma of a planted common owner. *)
}

val default_profile : profile

val generate : ?profile:profile -> Rng.t -> providers:int -> owners:int -> t
(** Build a network whose identity-frequency profile follows [profile].
    Epsilons are initialized to 0.5; use {!with_epsilons} or the helpers
    below to override. *)

val with_epsilons : t -> float array -> t
(** @raise Invalid_argument on a length mismatch or out-of-range value. *)

val uniform_epsilons : Rng.t -> t -> t
(** Independent uniform draws over [0, 1) — the paper's default. *)

val constant_epsilons : t -> float -> t

val vip_epsilons : Rng.t -> t -> vip_fraction:float -> vip_epsilon:float -> base_epsilon:float -> t
(** A small VIP class (celebrities) with a high privacy degree, everyone else
    at a base degree — the motivating scenario of the introduction. *)

val exact_frequency_owner : t -> frequency:int -> int option
(** An owner whose frequency is exactly the given count, if any (used to
    select sweep points). *)

val stats_summary : t -> string
(** Human-readable dataset statistics (frequency quantiles, density). *)

val to_csv : t -> string
(** One line per (owner, provider) membership pair, plus a header carrying
    dimensions and epsilons. *)

val of_csv : string -> t
(** Inverse of {!to_csv}. @raise Failure on malformed input. *)
