lib/dataset/dataset.ml: Array Bitmatrix Bitvec Buffer Eppi_prelude Format List Printf Rng Sampling Scanf Stats String
