lib/dataset/dataset.mli: Bitmatrix Eppi_prelude Rng
