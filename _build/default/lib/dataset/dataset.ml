open Eppi_prelude

type t = {
  providers : int;
  owners : int;
  membership : Bitmatrix.t;
  epsilons : float array;
}

let frequency t j = Bitmatrix.row_count t.membership j
let sigma t j = float_of_int (frequency t j) /. float_of_int t.providers
let member t ~provider ~owner = Bitmatrix.get t.membership ~row:owner ~col:provider

type profile = {
  zipf_exponent : float;
  max_rare_frequency : int;
  common_fraction : float;
  common_min_sigma : float;
}

let default_profile =
  { zipf_exponent = 1.1; max_rare_frequency = 500; common_fraction = 0.0; common_min_sigma = 0.9 }

let scatter rng membership ~providers ~owner ~count =
  let chosen = Rng.sample_without_replacement rng ~k:count ~n:providers in
  Array.iter (fun p -> Bitmatrix.set membership ~row:owner ~col:p true) chosen

let generate ?(profile = default_profile) rng ~providers ~owners =
  if providers <= 0 || owners <= 0 then invalid_arg "Dataset.generate: empty network";
  let membership = Bitmatrix.create ~rows:owners ~cols:providers in
  let max_rare = max 1 (min profile.max_rare_frequency providers) in
  let zipf = Sampling.Zipf.create ~n:max_rare ~s:profile.zipf_exponent in
  let commons = int_of_float (profile.common_fraction *. float_of_int owners) in
  for j = 0 to owners - 1 do
    let count =
      if j < commons then begin
        (* Planted common identity: sigma in [common_min_sigma, 1]. *)
        let lo = int_of_float (profile.common_min_sigma *. float_of_int providers) in
        Rng.int_in rng (min lo providers) providers
      end
      else
        (* Tail identity: Zipf rank maps directly to a provider count, so the
           frequency histogram is Zipf-shaped with many rank-1 singletons. *)
        Sampling.Zipf.sample zipf rng
    in
    scatter rng membership ~providers ~owner:j ~count
  done;
  { providers; owners; membership; epsilons = Array.make owners 0.5 }

let check_epsilon e =
  if e < 0.0 || e > 1.0 then invalid_arg "Dataset: epsilon out of [0, 1]"

let with_epsilons t epsilons =
  if Array.length epsilons <> t.owners then invalid_arg "Dataset.with_epsilons: length mismatch";
  Array.iter check_epsilon epsilons;
  { t with epsilons = Array.copy epsilons }

let uniform_epsilons rng t =
  { t with epsilons = Array.init t.owners (fun _ -> Rng.float rng 1.0) }

let constant_epsilons t e =
  check_epsilon e;
  { t with epsilons = Array.make t.owners e }

let vip_epsilons rng t ~vip_fraction ~vip_epsilon ~base_epsilon =
  check_epsilon vip_epsilon;
  check_epsilon base_epsilon;
  let vips = int_of_float (vip_fraction *. float_of_int t.owners) in
  let chosen = Rng.sample_without_replacement rng ~k:vips ~n:t.owners in
  let epsilons = Array.make t.owners base_epsilon in
  Array.iter (fun j -> epsilons.(j) <- vip_epsilon) chosen;
  { t with epsilons }

let exact_frequency_owner t ~frequency:want =
  let rec go j =
    if j >= t.owners then None else if frequency t j = want then Some j else go (j + 1)
  in
  go 0

let stats_summary t =
  let freqs = Array.init t.owners (fun j -> float_of_int (frequency t j)) in
  let s = Stats.summary freqs in
  let density =
    Array.fold_left ( +. ) 0.0 freqs /. float_of_int (t.providers * t.owners)
  in
  Format.asprintf "providers=%d owners=%d density=%.5f frequency: %a" t.providers t.owners
    density Stats.pp_summary s

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# providers=%d owners=%d\n" t.providers t.owners);
  Array.iteri (fun j e -> Buffer.add_string buf (Printf.sprintf "eps,%d,%f\n" j e)) t.epsilons;
  for j = 0 to t.owners - 1 do
    Bitvec.iter_set
      (fun p -> Buffer.add_string buf (Printf.sprintf "m,%d,%d\n" j p))
      (Bitmatrix.row t.membership j)
  done;
  Buffer.contents buf

let of_csv text =
  let lines = String.split_on_char '\n' text in
  let providers = ref 0 and owners = ref 0 in
  (match lines with
  | header :: _ ->
      (try Scanf.sscanf header "# providers=%d owners=%d" (fun p o ->
               providers := p;
               owners := o)
       with Scanf.Scan_failure _ | Failure _ | End_of_file ->
         failwith "Dataset.of_csv: bad header")
  | [] -> failwith "Dataset.of_csv: empty input");
  if !providers <= 0 || !owners <= 0 then failwith "Dataset.of_csv: bad dimensions";
  let membership = Bitmatrix.create ~rows:!owners ~cols:!providers in
  let epsilons = Array.make !owners 0.5 in
  List.iteri
    (fun lineno line ->
      if lineno > 0 && line <> "" then
        match String.split_on_char ',' line with
        | [ "eps"; j; e ] -> epsilons.(int_of_string j) <- float_of_string e
        | [ "m"; j; p ] ->
            Bitmatrix.set membership ~row:(int_of_string j) ~col:(int_of_string p) true
        | _ -> failwith (Printf.sprintf "Dataset.of_csv: bad line %d" (lineno + 1)))
    lines;
  { providers = !providers; owners = !owners; membership; epsilons }
