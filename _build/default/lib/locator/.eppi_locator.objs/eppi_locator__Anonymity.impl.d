lib/locator/anonymity.ml: Eppi_prelude Eppi_simnet List Rng
