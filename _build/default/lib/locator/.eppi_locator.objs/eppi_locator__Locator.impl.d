lib/locator/locator.ml: Array Bitmatrix Eppi Eppi_prelude Hashtbl List Option Printf Rng
