lib/locator/locator.mli: Eppi Eppi_prelude
