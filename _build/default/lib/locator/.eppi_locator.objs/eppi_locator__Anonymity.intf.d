lib/locator/anonymity.mli: Eppi_prelude Eppi_simnet Rng
