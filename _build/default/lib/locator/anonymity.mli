(** Searcher anonymity via Crowds-style query forwarding.

    The paper scopes searcher anonymity out of ε-PPI and points at anonymity
    protocols ([20], Wright et al.'s analysis of Crowds-like systems): the
    owner-membership privacy of the index says nothing about {i who is
    asking}.  This module supplies that missing layer for the locator
    service: searchers form a crowd of forwarding relays ("jondos"); a query
    hops through random members, each forwarding again with probability
    p_f or submitting it to the locator server otherwise, so the server —
    and any corrupt member on the path — cannot tell the initiator from a
    relay.

    Implemented over the deterministic simulated network, with the two
    classical analyses: expected path length 1/(1-p_f) + 1, and Reiter &
    Rubin's {i probable innocence} condition
    n >= (p_f / (p_f - 1/2)) (c + 1) against c colluding members, which the
    predecessor-observation simulation validates empirically. *)

open Eppi_prelude

type config = {
  members : int;  (** Crowd size n (at least 2). *)
  forward_probability : float;  (** p_f in [0, 1). *)
}

type outcome = {
  path : int list;  (** Members traversed, initiator first. *)
  submitted_by : int;  (** The member that contacted the locator server. *)
  hops : int;  (** Network hops including the final submission. *)
  latency : float;  (** Simulated seconds from initiation to submission. *)
}

val simulate_query :
  ?net_config:Eppi_simnet.Simnet.config -> Rng.t -> config -> initiator:int -> outcome
(** Route one query through the crowd.
    @raise Invalid_argument on a bad initiator or config. *)

val expected_path_length : forward_probability:float -> float
(** 1/(1-p_f) + 1: initiator's first hop plus the geometric forwarding
    chain. *)

val probable_innocence : members:int -> forward_probability:float -> colluders:int -> bool
(** Reiter-Rubin condition for the initiator to look no more likely than
    not, from a colluder's viewpoint; false whenever p_f <= 1/2. *)

val predecessor_confidence : Rng.t -> config -> colluders:int -> trials:int -> float
(** Empirical predecessor attack: members 0..colluders-1 are corrupt; over
    [trials] queries from random honest initiators, measure how often the
    {i first} corrupt member on the path saw the true initiator as its
    predecessor (the attacker's best guess).  Only queries that touch a
    colluder count; returns 0 if none do. *)
