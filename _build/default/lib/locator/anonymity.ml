open Eppi_prelude
module Simnet = Eppi_simnet.Simnet

type config = {
  members : int;
  forward_probability : float;
}

type outcome = {
  path : int list;
  submitted_by : int;
  hops : int;
  latency : float;
}

let check config =
  if config.members < 2 then invalid_arg "Anonymity: need at least 2 crowd members";
  if config.forward_probability < 0.0 || config.forward_probability >= 1.0 then
    invalid_arg "Anonymity: forward probability must be in [0, 1)"

type msg = Query of { hop : int }

let simulate_query ?net_config rng config ~initiator =
  check config;
  if initiator < 0 || initiator >= config.members then
    invalid_arg "Anonymity.simulate_query: bad initiator";
  let net = Simnet.create ?config:net_config ~nodes:config.members () in
  let rev_path = ref [ initiator ] in
  let submitted_by = ref (-1) in
  let submit_time = ref 0.0 in
  let hops = ref 0 in
  let pick_other sim self =
    ignore sim;
    (* Crowds forwards to a uniformly random member (possibly itself); we
       exclude self to keep every hop a real network message. *)
    let r = Rng.int rng (config.members - 1) in
    if r >= self then r + 1 else r
  in
  let handle sim me (Query { hop }) =
    rev_path := me :: !rev_path;
    if Rng.bernoulli rng config.forward_probability then begin
      incr hops;
      Simnet.send sim ~src:me ~dst:(pick_other sim me) ~size:256 (Query { hop = hop + 1 })
    end
    else begin
      (* Submit to the locator server: one more (external) hop. *)
      incr hops;
      submitted_by := me;
      submit_time := Simnet.now sim
    end
  in
  for i = 0 to config.members - 1 do
    Simnet.on_receive net i (fun sim ~src:_ msg -> handle sim i msg)
  done;
  Simnet.at net ~delay:0.0 initiator (fun sim ->
      incr hops;
      Simnet.send sim ~src:initiator ~dst:(pick_other sim initiator) ~size:256 (Query { hop = 1 }));
  Simnet.run net;
  if !submitted_by < 0 then failwith "Anonymity.simulate_query: query never submitted";
  { path = List.rev !rev_path; submitted_by = !submitted_by; hops = !hops; latency = !submit_time }

let expected_path_length ~forward_probability =
  if forward_probability < 0.0 || forward_probability >= 1.0 then
    invalid_arg "Anonymity.expected_path_length";
  (1.0 /. (1.0 -. forward_probability)) +. 1.0

let probable_innocence ~members ~forward_probability ~colluders =
  if forward_probability <= 0.5 then false
  else
    float_of_int members
    >= forward_probability /. (forward_probability -. 0.5) *. float_of_int (colluders + 1)

let predecessor_confidence rng config ~colluders ~trials =
  check config;
  if colluders < 0 || colluders >= config.members then
    invalid_arg "Anonymity.predecessor_confidence: bad colluder count";
  if trials <= 0 then invalid_arg "Anonymity.predecessor_confidence: trials must be positive";
  let observed = ref 0 and correct = ref 0 in
  for _ = 1 to trials do
    (* Honest initiators only: members colluders..members-1. *)
    let initiator = colluders + Rng.int rng (config.members - colluders) in
    let outcome = simulate_query rng config ~initiator in
    (* The first corrupt member on the path blames its predecessor. *)
    let rec scan = function
      | predecessor :: member :: _ when member < colluders ->
          incr observed;
          if predecessor = initiator then incr correct
      | _ :: rest -> scan rest
      | [] -> ()
    in
    scan outcome.path
  done;
  if !observed = 0 then 0.0 else float_of_int !correct /. float_of_int !observed
