(** Execution-time model for the MPC engine.

    The paper justifies its scalability claims through two quantities: the
    compiled circuit size ("the circuit size determines the execution time",
    Section V-B) and the number of parties in the generic-MPC part.  This
    module turns those quantities into simulated seconds so the Fig. 6
    experiments can be regenerated.  The model is

    {v time = setup * p  +  pairwise * p^2            (session setup, keys)
            + cpu_gate * size                          (local evaluation)
            + crypto_and * and_gates * p               (per-gate crypto work)
            + rounds * latency + bytes / bandwidth     (network)            v}

    Constants are calibrated so that a 3-party CountBelow run lands near one
    second, the scale FairplayMP reports; only the *shape* of the resulting
    curves is meant to be compared with the paper (see EXPERIMENTS.md). *)

open Eppi_circuit

type network = { latency : float; bandwidth : float }

val lan : network
(** Emulab-like LAN: 0.5 ms latency, 100 MB/s. *)

type params = {
  setup_per_party : float;
  setup_per_pair : float;
  cpu_per_gate : float;
  crypto_per_and : float;
}

val default_params : params

val estimate :
  ?params:params -> network:network -> parties:int -> outputs:int -> Circuit.stats -> float
(** Simulated wall-clock seconds for one execution of a circuit with the
    given shape among [parties] parties. *)

val estimate_comm :
  parties:int -> outputs:int -> Circuit.stats -> Gmw.comm_stats
(** Re-exported communication accounting (see {!Gmw.comm_estimate}). *)
