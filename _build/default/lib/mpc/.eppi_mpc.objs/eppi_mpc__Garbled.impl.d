lib/mpc/garbled.ml: Array Circuit Eppi_circuit Eppi_prelude Int64 List Rng
