lib/mpc/garbled.mli: Circuit Eppi_circuit Eppi_prelude Rng
