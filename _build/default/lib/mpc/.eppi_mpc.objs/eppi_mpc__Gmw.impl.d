lib/mpc/gmw.ml: Array Circuit Eppi_circuit Eppi_prelude List Rng
