lib/mpc/gmw.mli: Circuit Eppi_circuit Eppi_prelude Rng
