lib/mpc/cost.ml: Circuit Eppi_circuit Gmw
