lib/mpc/cost.mli: Circuit Eppi_circuit Gmw
