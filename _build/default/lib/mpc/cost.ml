open Eppi_circuit

type network = { latency : float; bandwidth : float }

let lan = { latency = 0.0005; bandwidth = 100_000_000.0 }

type params = {
  setup_per_party : float;
  setup_per_pair : float;
  cpu_per_gate : float;
  crypto_per_and : float;
}

(* Calibrated against the magnitudes FairplayMP reports: a 3-party run of a
   ~100-AND circuit costs on the order of a second, dominated by session
   setup and per-gate cryptography rather than raw bandwidth. *)
let default_params =
  {
    setup_per_party = 0.08;
    setup_per_pair = 0.055;
    cpu_per_gate = 0.000002;
    crypto_per_and = 0.0017;
  }

let estimate_comm ~parties ~outputs stats = Gmw.comm_estimate ~parties stats ~outputs

let estimate ?(params = default_params) ~network ~parties ~outputs (stats : Circuit.stats) =
  let p = float_of_int parties in
  let comm = estimate_comm ~parties ~outputs stats in
  params.setup_per_party *. p
  +. (params.setup_per_pair *. p *. p)
  +. (params.cpu_per_gate *. float_of_int stats.size *. p)
  +. (params.crypto_per_and *. float_of_int stats.and_gates *. p)
  +. (float_of_int comm.rounds *. network.latency)
  +. (float_of_int comm.bytes /. network.bandwidth)
