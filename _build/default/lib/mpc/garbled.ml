open Eppi_prelude
open Eppi_circuit

type comm_stats = {
  garbled_tables_bytes : int;
  label_transfer_bytes : int;
  ot_count : int;
}

type result = {
  outputs : bool array;
  comm : comm_stats;
  evaluator_labels : int64 array;
}

let label_bytes = 8

(* A simulated OT costs a few label transfers' worth of traffic. *)
let ot_bytes = 3 * label_bytes

let comm_estimate (stats : Circuit.stats) ~evaluator_inputs =
  let garbler_inputs = stats.inputs - evaluator_inputs in
  {
    garbled_tables_bytes = 4 * label_bytes * stats.and_gates;
    label_transfer_bytes = (garbler_inputs * label_bytes) + (evaluator_inputs * ot_bytes);
    ot_count = evaluator_inputs;
  }

(* Keyed mixing function standing in for the garbling PRF (splitmix64
   finalizer over the operand labels and the gate id).  NOT cryptographic. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let hash la lb gate_id =
  mix (Int64.logxor (Int64.logxor la (rotl lb 17)) (Int64.of_int ((gate_id * 2) + 1)))

let lsb l = Int64.logand l 1L = 1L

let execute rng circuit ~inputs =
  if Circuit.num_parties circuit > 2 then
    invalid_arg "Garbled.execute: at most two parties (garbler and evaluator)";
  let gates = Circuit.gates circuit in
  let n_wires = Array.length gates in
  (* Global free-XOR offset; its low bit must be 1 so the two labels of any
     wire carry distinct permute bits. *)
  let delta = Int64.logor (Rng.bits64 rng) 1L in
  let fresh () = Rng.bits64 rng in
  (* label0.(w) encodes FALSE on wire w; TRUE is label0 ^ delta. *)
  let label0 = Array.make n_wires 0L in
  (* The evaluator's single active label per wire. *)
  let active = Array.make n_wires 0L in
  let tables_bytes = ref 0 in
  let labels_bytes = ref 0 in
  let ot_count = ref 0 in
  let label_for w v = if v then Int64.logxor label0.(w) delta else label0.(w) in
  Array.iteri
    (fun w gate ->
      match gate with
      | Circuit.Input { party; index } ->
          if party >= Array.length inputs || index >= Array.length inputs.(party) then
            invalid_arg "Garbled.execute: missing input bit";
          let bit = inputs.(party).(index) in
          label0.(w) <- fresh ();
          active.(w) <- label_for w bit;
          if party = 0 then labels_bytes := !labels_bytes + label_bytes
          else begin
            (* Evaluator input: in a real deployment this label arrives via
               oblivious transfer, so the garbler never sees the choice. *)
            incr ot_count;
            labels_bytes := !labels_bytes + ot_bytes
          end
      | Const b ->
          (* Constants are garbler-known; their labels ride along with the
             circuit blob at no separate transfer cost. *)
          label0.(w) <- fresh ();
          active.(w) <- label_for w b
      | Not a ->
          (* Free: the wire's FALSE label is the operand's TRUE label. *)
          label0.(w) <- Int64.logxor label0.(a) delta;
          active.(w) <- active.(a)
      | Xor (a, b) ->
          (* Free XOR. *)
          label0.(w) <- Int64.logxor label0.(a) label0.(b);
          active.(w) <- Int64.logxor active.(a) active.(b)
      | And (a, b) ->
          label0.(w) <- fresh ();
          (* Garble the four rows, placed by the operands' permute bits. *)
          let table = Array.make 4 0L in
          List.iter
            (fun (va, vb) ->
              let la = label_for a va and lb = label_for b vb in
              let row = (if lsb la then 2 else 0) lor (if lsb lb then 1 else 0) in
              table.(row) <- Int64.logxor (label_for w (va && vb)) (hash la lb w))
            [ (false, false); (false, true); (true, false); (true, true) ];
          tables_bytes := !tables_bytes + (4 * label_bytes);
          (* Evaluate: decrypt exactly the row selected by the active
             permute bits. *)
          let la = active.(a) and lb = active.(b) in
          let row = (if lsb la then 2 else 0) lor (if lsb lb then 1 else 0) in
          active.(w) <- Int64.logxor table.(row) (hash la lb w))
    gates;
  (* Output decoding: the garbler reveals each output wire's FALSE permute
     bit; the evaluator XORs it with her active label's bit. *)
  let outputs =
    Array.map (fun w -> lsb active.(w) <> lsb label0.(w)) (Circuit.outputs circuit)
  in
  {
    outputs;
    comm =
      {
        garbled_tables_bytes = !tables_bytes;
        label_transfer_bytes = !labels_bytes;
        ot_count = !ot_count;
      };
    evaluator_labels = active;
  }
