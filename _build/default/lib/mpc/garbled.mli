(** Two-party garbled-circuit evaluation (Yao / Fairplay style).

    The paper's MPC substrate, FairplayMP, descends from Fairplay [15],
    which evaluates {i garbled} Boolean circuits: the garbler assigns every
    wire a pair of random labels, encrypts each AND gate's truth table under
    the operand labels, and the evaluator — holding exactly one (active)
    label per wire — decrypts a single row per gate, learning nothing about
    the other rows.  This module implements that protocol for two parties
    with the classic optimizations:

    - {b free XOR}: all wire-label pairs differ by a global offset Δ, so
      XOR gates cost nothing (labels XOR);
    - {b point-and-permute}: the label's low bit selects the table row, so
      the evaluator decrypts exactly one of the four entries per AND gate.

    Simulation caveats, in the spirit of DESIGN.md: the "encryption" is a
    splitmix64-based keyed mixer, {i not} a cryptographic PRF, and the
    evaluator's input labels are handed over directly where a real system
    would run oblivious transfer (the OT cost is accounted in the traffic
    estimate).  Correctness and the label-indistinguishability structure
    are real and tested; do not use this to protect actual secrets.

    The circuit's parties 0 and 1 are the garbler and the evaluator
    respectively. *)

open Eppi_prelude
open Eppi_circuit

type comm_stats = {
  garbled_tables_bytes : int;  (** 4 rows x 8 bytes per AND gate. *)
  label_transfer_bytes : int;  (** Input labels incl. simulated OTs. *)
  ot_count : int;  (** One per evaluator input bit. *)
}

type result = {
  outputs : bool array;
  comm : comm_stats;
  evaluator_labels : int64 array;
      (** The evaluator's view: one active label per wire (secrecy tests
          check these carry no information about the garbler's inputs). *)
}

val execute : Rng.t -> Circuit.t -> inputs:bool array array -> result
(** Garble and evaluate.  The circuit must declare at most 2 parties.
    @raise Invalid_argument otherwise or on missing input bits. *)

val comm_estimate : Circuit.stats -> evaluator_inputs:int -> comm_stats
(** Closed-form traffic accounting, identical to what {!execute} reports. *)
