open Eppi_prelude
open Eppi_circuit

type comm_stats = { rounds : int; messages : int; bytes : int }

type view = {
  party : int;
  wire_shares : bool array;
  opened : (bool * bool) array;
}

type result = {
  outputs : bool array;
  comm : comm_stats;
  views : view array;
}

let comm_estimate ~parties (stats : Circuit.stats) ~outputs =
  let p = parties in
  let pairs = p * (p - 1) in
  (* Input sharing: each input bit's owner sends one share to every other
     party.  And layer: every party broadcasts 2 masked bits per gate in the
     layer.  Output: every party broadcasts its output shares. *)
  let input_messages = stats.inputs * (p - 1) in
  let input_bytes = stats.inputs * (p - 1) in
  let and_messages = stats.and_depth * pairs in
  let and_bits = 2 * stats.and_gates * pairs in
  let output_messages = pairs in
  let output_bytes = pairs * ((outputs + 7) / 8) in
  {
    rounds = 1 + stats.and_depth + 1;
    messages = input_messages + and_messages + output_messages;
    bytes = input_bytes + ((and_bits + 7) / 8) + output_bytes;
  }

(* XOR-share a bit among p parties: p-1 random shares, last fixes the parity. *)
let share_bit rng ~p v =
  let shares = Array.init p (fun i -> if i < p - 1 then Rng.bool rng else false) in
  let parity = Array.fold_left ( <> ) false shares in
  shares.(p - 1) <- parity <> v;
  shares

let execute rng circuit ~inputs =
  let p = Circuit.num_parties circuit in
  let gates = Circuit.gates circuit in
  let n_wires = Array.length gates in
  (* shares.(party).(wire) *)
  let shares = Array.init p (fun _ -> Array.make n_wires false) in
  let opened = ref [] in
  Array.iteri
    (fun w g ->
      match g with
      | Circuit.Input { party; index } ->
          if party >= Array.length inputs || index >= Array.length inputs.(party) then
            invalid_arg "Gmw.execute: missing input bit";
          let bit_shares = share_bit rng ~p inputs.(party).(index) in
          Array.iteri (fun i s -> shares.(i).(w) <- s) bit_shares
      | Const b ->
          (* Public constant: party 0 holds it, everyone else holds zero. *)
          shares.(0).(w) <- b
      | Not a ->
          Array.iteri (fun i sh -> sh.(w) <- if i = 0 then not sh.(a) else sh.(a)) shares
      | Xor (a, b) -> Array.iter (fun sh -> sh.(w) <- sh.(a) <> sh.(b)) shares
      | And (a, b) ->
          (* Beaver triple (ta, tb, tc) with tc = ta && tb, dealt XOR-shared. *)
          let ta = Rng.bool rng and tb = Rng.bool rng in
          let tc = ta && tb in
          let sa = share_bit rng ~p ta in
          let sb = share_bit rng ~p tb in
          let sc = share_bit rng ~p tc in
          (* Open d = x ^ ta and e = y ^ tb (each party broadcasts its share). *)
          let d = ref false and e = ref false in
          for i = 0 to p - 1 do
            d := !d <> (shares.(i).(a) <> sa.(i));
            e := !e <> (shares.(i).(b) <> sb.(i))
          done;
          opened := (!d, !e) :: !opened;
          for i = 0 to p - 1 do
            let z =
              sc.(i)
              <> (!d && sb.(i))
              <> (!e && sa.(i))
              <> (i = 0 && !d && !e)
            in
            shares.(i).(w) <- z
          done)
    gates;
  let outputs =
    Array.map
      (fun w ->
        let v = ref false in
        for i = 0 to p - 1 do
          v := !v <> shares.(i).(w)
        done;
        !v)
      (Circuit.outputs circuit)
  in
  let opened = Array.of_list (List.rev !opened) in
  let views =
    Array.init p (fun i -> { party = i; wire_shares = shares.(i); opened })
  in
  let comm =
    comm_estimate ~parties:p (Circuit.stats circuit)
      ~outputs:(Array.length (Circuit.outputs circuit))
  in
  { outputs; comm; views }
