module B = Circuit.Builder

type word = Circuit.wire array

let bits_for v =
  if v < 0 then invalid_arg "Word.bits_for: negative value";
  let rec go v acc = if v = 0 then max 1 acc else go (v lsr 1) (acc + 1) in
  go v 0

let const_int b ~width v =
  if width <= 0 then invalid_arg "Word.const_int: width must be positive";
  Array.init width (fun i -> B.const b ((v lsr i) land 1 = 1))

let input_word b ~party ~width = Array.init width (fun _ -> B.input b ~party)

let to_int bits =
  Array.to_list bits
  |> List.rev
  |> List.fold_left (fun acc bit -> (acc lsl 1) lor if bit then 1 else 0) 0

let zero_extend b w width =
  if Array.length w >= width then w
  else Array.init width (fun i -> if i < Array.length w then w.(i) else B.const b false)

(* Full adder: sum = a^b^cin, cout = (a&b) ^ (cin & (a^b)). *)
let full_adder b a c cin =
  let axc = B.xor_ b a c in
  let s = B.xor_ b axc cin in
  let cout = B.xor_ b (B.and_ b a c) (B.and_ b cin axc) in
  (s, cout)

let ripple b x y ~cin ~width =
  let x = zero_extend b x width and y = zero_extend b y width in
  let bits = Array.make width cin (* placeholder *) in
  let carry = ref cin in
  for i = 0 to width - 1 do
    let s, cout = full_adder b x.(i) y.(i) !carry in
    bits.(i) <- s;
    carry := cout
  done;
  (bits, !carry)

let add b x y =
  let width = max (Array.length x) (Array.length y) in
  let bits, carry = ripple b x y ~cin:(B.const b false) ~width in
  Array.append bits [| carry |]

let add_mod b ~width x y =
  let bits, _carry = ripple b x y ~cin:(B.const b false) ~width in
  bits

let rec sum b = function
  | [] -> [| B.const b false |]
  | [ w ] -> w
  | words ->
      (* Combine adjacent pairs so depth stays logarithmic. *)
      let rec pair = function
        | [] -> []
        | [ w ] -> [ w ]
        | w1 :: w2 :: rest -> add b w1 w2 :: pair rest
      in
      sum b (pair words)

let popcount b wires = sum b (Array.to_list wires |> List.map (fun w -> [| w |]))

let sub b x y =
  let width = max (Array.length x) (Array.length y) in
  let y = zero_extend b y width in
  let noty = Array.map (fun w -> B.not_ b w) y in
  let bits, _carry = ripple b x noty ~cin:(B.const b true) ~width in
  bits

(* a >= b iff the carry out of a + not(b) + 1 is set (no borrow in a - b). *)
let ge b x y =
  let width = max (Array.length x) (Array.length y) in
  let x = zero_extend b x width and y = zero_extend b y width in
  let noty = Array.map (fun w -> B.not_ b w) y in
  let _, carry = ripple b x noty ~cin:(B.const b true) ~width in
  carry

let lt b x y = B.not_ b (ge b x y)

let equal b x y =
  let width = max (Array.length x) (Array.length y) in
  let x = zero_extend b x width and y = zero_extend b y width in
  let eq_bits = Array.init width (fun i -> B.not_ b (B.xor_ b x.(i) y.(i))) in
  (* AND-tree keeps multiplicative depth logarithmic. *)
  let rec tree = function
    | [] -> B.const b true
    | [ w ] -> w
    | ws ->
        let rec pair = function
          | [] -> []
          | [ w ] -> [ w ]
          | w1 :: w2 :: rest -> B.and_ b w1 w2 :: pair rest
        in
        tree (pair ws)
  in
  tree (Array.to_list eq_bits)

let mux b sel w_then w_else =
  let width = max (Array.length w_then) (Array.length w_else) in
  let w_then = zero_extend b w_then width and w_else = zero_extend b w_else width in
  Array.init width (fun i ->
      (* else ^ (sel & (then ^ else)): one AND per bit. *)
      B.xor_ b w_else.(i) (B.and_ b sel (B.xor_ b w_then.(i) w_else.(i))))

let mul b x y =
  let wx = Array.length x and wy = Array.length y in
  (* Shift-and-add: one AND row plus one adder per multiplier bit. *)
  let partials =
    List.init wy (fun i ->
        let row = Array.map (fun xb -> B.and_ b xb y.(i)) x in
        Array.append (Array.init i (fun _ -> B.const b false)) row)
  in
  let product = sum b partials in
  if Array.length product >= wx + wy then Array.sub product 0 (wx + wy)
  else zero_extend b product (wx + wy)

let divmod b dividend divisor =
  let n = Array.length dividend in
  let rw = Array.length divisor + 1 in
  let quotient = Array.make n (B.const b false) in
  (* Restoring division, MSB first; the remainder register is one bit wider
     than the divisor so the shifted-in bit never overflows. *)
  let rem = ref (Array.init rw (fun _ -> B.const b false)) in
  let divisor_ext = zero_extend b divisor rw in
  for i = n - 1 downto 0 do
    let shifted = Array.init rw (fun j -> if j = 0 then dividend.(i) else !rem.(j - 1)) in
    let fits = ge b shifted divisor_ext in
    let diff = sub b shifted divisor_ext in
    rem := mux b fits diff shifted;
    quotient.(i) <- fits
  done;
  (quotient, Array.sub !rem 0 (Array.length divisor))

let sqrt b x =
  let n = Array.length x in
  let pairs = (n + 1) / 2 in
  let x = zero_extend b x (2 * pairs) in
  let rw = pairs + 2 in
  let rem = ref (Array.init rw (fun _ -> B.const b false)) in
  let root = ref [||] in
  for i = pairs - 1 downto 0 do
    (* Shift in the next two dividend bits. *)
    let shifted =
      Array.init rw (fun j ->
          if j = 0 then x.(2 * i)
          else if j = 1 then x.((2 * i) + 1)
          else !rem.(j - 2))
    in
    (* Trial subtrahend is (root << 2) | 1. *)
    let trial =
      Array.init rw (fun j ->
          if j = 0 then B.const b true
          else if j = 1 then B.const b false
          else if j - 2 < Array.length !root then !root.(j - 2)
          else B.const b false)
    in
    let fits = ge b shifted trial in
    let diff = sub b shifted trial in
    rem := mux b fits diff shifted;
    root := Array.append [| fits |] !root
  done;
  !root

let reduce_mod b w ~modulus ~steps =
  if modulus <= 0 then invalid_arg "Word.reduce_mod: modulus must be positive";
  let width = max (Array.length w) (bits_for modulus) in
  let q = const_int b ~width modulus in
  let cur = ref (zero_extend b w width) in
  for _ = 1 to steps do
    let fits = ge b !cur q in
    let diff = sub b !cur q in
    cur := mux b fits diff !cur
  done;
  Array.sub !cur 0 (bits_for (modulus - 1))

let output_word b w = Array.iter (fun bit -> B.output b bit) w
