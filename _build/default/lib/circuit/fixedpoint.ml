module B = Circuit.Builder

type t = {
  word : Word.word;
  frac_bits : int;
}

let of_word word ~frac_bits = { word; frac_bits }

let constant b ~width ~frac_bits v =
  if v < 0.0 then invalid_arg "Fixedpoint.constant: negative value";
  let scaled = Float.round (v *. float_of_int (1 lsl frac_bits)) in
  let cap = float_of_int ((1 lsl width) - 1) in
  let clamped = int_of_float (Float.min scaled cap) in
  { word = Word.const_int b ~width clamped; frac_bits }

let shift_left b word k =
  Array.append (Array.init k (fun _ -> B.const b false)) word

let of_int_word b word ~frac_bits = { word = shift_left b word frac_bits; frac_bits }

let to_float bits ~frac_bits =
  float_of_int (Word.to_int bits) /. float_of_int (1 lsl frac_bits)

let check_compat a c =
  if a.frac_bits <> c.frac_bits then invalid_arg "Fixedpoint: frac_bits mismatch"

let trim b word width =
  if Array.length word > width then Array.sub word 0 width else Word.zero_extend b word width

let add b a c =
  check_compat a c;
  { a with word = Word.add b a.word c.word }

let sub b a c =
  check_compat a c;
  { a with word = Word.sub b a.word c.word }

let double b a = { a with word = shift_left b a.word 1 }

let mul b a c ~width =
  check_compat a c;
  (* (wa * wc) / 2^f: drop the low f bits of the full product. *)
  let product = Word.mul b a.word c.word in
  let dropped = Array.sub product a.frac_bits (Array.length product - a.frac_bits) in
  { a with word = trim b dropped width }

let div b a c ~width =
  check_compat a c;
  (* (wa << f) / wc keeps the quotient in Q(f). *)
  let scaled = shift_left b a.word a.frac_bits in
  let q, _ = Word.divmod b scaled c.word in
  { a with word = trim b q width }

let div_by_int b a divisor ~width =
  let q, _ = Word.divmod b a.word divisor in
  { a with word = trim b q width }

let sqrt b a =
  (* sqrt(w / 2^f) = isqrt(w << f) / 2^f. *)
  let scaled = shift_left b a.word a.frac_bits in
  { a with word = Word.sqrt b scaled }

let ge b a c =
  check_compat a c;
  Word.ge b a.word c.word

let output b a = Word.output_word b a.word
