(** Word-level combinators over {!Circuit.Builder}.

    A word is an unsigned integer laid out as a wire array, least significant
    bit first.  These are the gadgets the SFDL compiler and the hand-built
    protocol circuits are made of: ripple adders, subtract-based comparators,
    multiplexers and popcounts.  Gate counts follow the classical ripple
    constructions (2 AND per full-adder bit, 1 AND per mux bit), which is what
    makes the reproduced circuit-size curves meaningful. *)

type word = Circuit.wire array

val const_int : Circuit.Builder.t -> width:int -> int -> word
(** [const_int b ~width v] encodes [v mod 2^width]. *)

val input_word : Circuit.Builder.t -> party:int -> width:int -> word
(** Allocate [width] fresh input bits of [party]. *)

val to_int : bool array -> int
(** Interpret evaluated output bits (LSB first) as an unsigned int. *)

val zero_extend : Circuit.Builder.t -> word -> int -> word
(** Pad with constant zeros up to the given width (no-op if already wider). *)

val add : Circuit.Builder.t -> word -> word -> word
(** Full-width sum: result is one bit wider than the widest operand. *)

val add_mod : Circuit.Builder.t -> width:int -> word -> word -> word
(** Sum modulo 2^width (carry dropped). *)

val sum : Circuit.Builder.t -> word list -> word
(** Balanced adder tree; [sum b []] is the 1-bit zero word. *)

val popcount : Circuit.Builder.t -> Circuit.wire array -> word
(** Number of set bits among the given wires. *)

val sub : Circuit.Builder.t -> word -> word -> word
(** Two's-complement difference at the common width; unsigned interpretation
    is valid when the first operand is at least the second. *)

val mul : Circuit.Builder.t -> word -> word -> word
(** Shift-and-add product; result width is the sum of operand widths. *)

val divmod : Circuit.Builder.t -> word -> word -> word * word
(** Restoring division: [(quotient, remainder)].  Unsigned; a zero divisor
    yields quotient all-ones and remainder equal to the dividend (hardware
    convention), so callers must guard if that matters. *)

val sqrt : Circuit.Builder.t -> word -> word
(** Integer square root (floor), digit-by-digit method; result has half the
    input width (rounded up). *)

val reduce_mod : Circuit.Builder.t -> word -> modulus:int -> steps:int -> word
(** [reduce_mod b w ~modulus ~steps] subtracts [modulus] conditionally
    [steps] times — exact when the value is below [steps+1] times the
    modulus, which is the case for a sum of [steps+1] canonical residues.
    Result width is [bits_for (modulus-1)]. *)

val lt : Circuit.Builder.t -> word -> word -> Circuit.wire
(** Unsigned [a < b]; operands are zero-extended to a common width. *)

val ge : Circuit.Builder.t -> word -> word -> Circuit.wire
val equal : Circuit.Builder.t -> word -> word -> Circuit.wire

val mux : Circuit.Builder.t -> Circuit.wire -> word -> word -> word
(** [mux b sel w_then w_else]; operands are zero-extended to a common
    width. *)

val output_word : Circuit.Builder.t -> word -> unit
(** Mark every bit of the word as a circuit output, LSB first. *)

val bits_for : int -> int
(** Minimum width that can represent the given non-negative value. *)
