(** Boolean circuit intermediate representation.

    This is the compilation target of the SFDL compiler and the object the
    MPC runtime evaluates, standing in for the circuits FairplayMP generates.
    The gate set is deliberately {i XOR-complete}: Input, Const, Not, Xor and
    And only.  In GMW-style MPC over XOR-shared bits, Not/Xor/Const are free
    (local) and And is the only gate that costs communication, so keeping the
    IR in this basis makes the cost model read directly off gate counts.  The
    builder (see {!Builder}) offers OR and other derived gates by lowering.

    Wires are integers; every gate only references strictly smaller wire ids,
    so construction order is a topological order and evaluation is a single
    left-to-right pass. *)

type wire = int

type gate =
  | Input of { party : int; index : int }
      (** [index]-th bit of [party]'s private input, LSB-first within each
          declared word. *)
  | Const of bool
  | Not of wire
  | Xor of wire * wire
  | And of wire * wire

type t

val gates : t -> gate array
(** The gate table, indexed by wire id. *)

val outputs : t -> wire array
(** Wires whose values are revealed as the public result. *)

val num_wires : t -> int
val num_parties : t -> int
(** One more than the largest party id appearing in an Input gate (at least
    the value passed at build time). *)

val input_width : t -> int -> int
(** [input_width t party] is the number of input bits [party] feeds. *)

type stats = {
  size : int;  (** Logic gates (Not + Xor + And): the paper's "circuit size". *)
  and_gates : int;  (** Interactive gates: the MPC communication driver. *)
  xor_gates : int;
  not_gates : int;
  inputs : int;
  and_depth : int;  (** Multiplicative depth = GMW round count. *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

val eval : t -> inputs:bool array array -> bool array
(** Plaintext evaluation: [inputs.(p)] holds party [p]'s input bits in
    declaration order.  Returns the output wire values.
    @raise Invalid_argument if an input vector is too short. *)

val and_layers : t -> wire array array
(** And-gates grouped by multiplicative depth, innermost first: layer [i]
    contains every And wire whose operands depend on at most [i] earlier And
    layers.  The MPC runtime processes one layer per communication round. *)

(** Mutable circuit under construction.  All gate constructors perform
    constant folding and trivial-operand simplification, so dead logic from
    compiled programs does not inflate the size metric artificially. *)
module Builder : sig
  type circuit := t
  type t

  val create : ?n_parties:int -> unit -> t
  val input : t -> party:int -> wire
  (** Allocate the next input bit of [party]. *)

  val const : t -> bool -> wire
  val not_ : t -> wire -> wire
  val xor_ : t -> wire -> wire -> wire
  val and_ : t -> wire -> wire -> wire
  val or_ : t -> wire -> wire -> wire
  (** Lowered to [a XOR b XOR (a AND b)]. *)

  val output : t -> wire -> unit
  val finish : t -> circuit
end
