type wire = int

type gate =
  | Input of { party : int; index : int }
  | Const of bool
  | Not of wire
  | Xor of wire * wire
  | And of wire * wire

type t = {
  gates : gate array;
  outputs : wire array;
  n_parties : int;
  input_widths : int array;
}

let gates t = t.gates
let outputs t = t.outputs
let num_wires t = Array.length t.gates
let num_parties t = t.n_parties

let input_width t party =
  if party < 0 || party >= t.n_parties then invalid_arg "Circuit.input_width: bad party";
  t.input_widths.(party)

type stats = {
  size : int;
  and_gates : int;
  xor_gates : int;
  not_gates : int;
  inputs : int;
  and_depth : int;
}

let and_depths t =
  let depth = Array.make (num_wires t) 0 in
  Array.iteri
    (fun w g ->
      match g with
      | Input _ | Const _ -> ()
      | Not a -> depth.(w) <- depth.(a)
      | Xor (a, b) -> depth.(w) <- max depth.(a) depth.(b)
      | And (a, b) -> depth.(w) <- 1 + max depth.(a) depth.(b))
    t.gates;
  depth

let stats t =
  let and_gates = ref 0 and xor_gates = ref 0 and not_gates = ref 0 and inputs = ref 0 in
  Array.iter
    (function
      | Input _ -> incr inputs
      | Const _ -> ()
      | Not _ -> incr not_gates
      | Xor _ -> incr xor_gates
      | And _ -> incr and_gates)
    t.gates;
  let depth = and_depths t in
  let and_depth = Array.fold_left max 0 depth in
  {
    size = !and_gates + !xor_gates + !not_gates;
    and_gates = !and_gates;
    xor_gates = !xor_gates;
    not_gates = !not_gates;
    inputs = !inputs;
    and_depth;
  }

let pp_stats ppf s =
  Format.fprintf ppf "size=%d and=%d xor=%d not=%d inputs=%d and_depth=%d" s.size
    s.and_gates s.xor_gates s.not_gates s.inputs s.and_depth

let eval t ~inputs =
  let values = Array.make (num_wires t) false in
  Array.iteri
    (fun w g ->
      values.(w) <-
        (match g with
        | Input { party; index } ->
            if party >= Array.length inputs || index >= Array.length inputs.(party) then
              invalid_arg "Circuit.eval: missing input bit";
            inputs.(party).(index)
        | Const b -> b
        | Not a -> not values.(a)
        | Xor (a, b) -> values.(a) <> values.(b)
        | And (a, b) -> values.(a) && values.(b)))
    t.gates;
  Array.map (fun w -> values.(w)) t.outputs

let and_layers t =
  let depth = and_depths t in
  let max_depth = Array.fold_left max 0 depth in
  let layers = Array.make max_depth [] in
  Array.iteri
    (fun w g ->
      match g with
      | And _ -> layers.(depth.(w) - 1) <- w :: layers.(depth.(w) - 1)
      | Input _ | Const _ | Not _ | Xor _ -> ())
    t.gates;
  Array.map (fun l -> Array.of_list (List.rev l)) layers

module Builder = struct
  type _circuit = t

  type t = {
    mutable gates : gate array;
    mutable len : int;
    mutable rev_outputs : wire list;
    mutable n_parties : int;
    mutable next_input : int array;  (* next input index per party; grows on demand *)
  }

  let create ?(n_parties = 0) () =
    {
      gates = Array.make 64 (Const false);
      len = 0;
      rev_outputs = [];
      n_parties;
      next_input = Array.make (max 1 n_parties) 0;
    }

  let push b g =
    if b.len = Array.length b.gates then begin
      let bigger = Array.make (2 * b.len) (Const false) in
      Array.blit b.gates 0 bigger 0 b.len;
      b.gates <- bigger
    end;
    b.gates.(b.len) <- g;
    b.len <- b.len + 1;
    b.len - 1

  let gate b w = b.gates.(w)

  (* Known-constant view of a wire, for folding. *)
  let as_const b w = match gate b w with Const v -> Some v | _ -> None

  let input b ~party =
    if party < 0 then invalid_arg "Builder.input: negative party";
    if party >= Array.length b.next_input then begin
      let bigger = Array.make (2 * (party + 1)) 0 in
      Array.blit b.next_input 0 bigger 0 (Array.length b.next_input);
      b.next_input <- bigger
    end;
    if party >= b.n_parties then b.n_parties <- party + 1;
    let index = b.next_input.(party) in
    b.next_input.(party) <- index + 1;
    push b (Input { party; index })

  let const b v =
    (* Reuse wires 0/1 when they already hold the constants. *)
    let rec find w = if w >= min b.len 8 then None
      else match b.gates.(w) with
        | Const v' when v' = v -> Some w
        | _ -> find (w + 1)
    in
    match find 0 with Some w -> w | None -> push b (Const v)

  let not_ b a =
    match gate b a with
    | Const v -> const b (not v)
    | Not inner -> inner
    | Input _ | Xor _ | And _ -> push b (Not a)

  let xor_ b a c =
    if a = c then const b false
    else
      match (as_const b a, as_const b c) with
      | Some va, Some vc -> const b (va <> vc)
      | Some false, None -> c
      | None, Some false -> a
      | Some true, None -> not_ b c
      | None, Some true -> not_ b a
      | None, None -> push b (Xor (a, c))

  let and_ b a c =
    if a = c then a
    else
      match (as_const b a, as_const b c) with
      | Some va, Some vc -> const b (va && vc)
      | Some false, None | None, Some false -> const b false
      | Some true, None -> c
      | None, Some true -> a
      | None, None -> push b (And (a, c))

  let or_ b a c =
    (* a OR b = a XOR b XOR (a AND b): stays within the XOR-complete basis. *)
    let ab = and_ b a c in
    xor_ b (xor_ b a c) ab

  let output b w =
    if w < 0 || w >= b.len then invalid_arg "Builder.output: unknown wire";
    b.rev_outputs <- w :: b.rev_outputs

  let finish b =
    let gates = Array.sub b.gates 0 b.len in
    let n_parties = b.n_parties in
    let input_widths = Array.make (max 1 n_parties) 0 in
    Array.iter
      (function
        | Input { party; index } -> input_widths.(party) <- max input_widths.(party) (index + 1)
        | Const _ | Not _ | Xor _ | And _ -> ())
      gates;
    {
      gates;
      outputs = Array.of_list (List.rev b.rev_outputs);
      n_parties = max 1 n_parties;
      input_widths;
    }
end
