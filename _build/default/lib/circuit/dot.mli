(** Graphviz DOT export of circuits, for documentation and debugging. *)

val to_dot : Circuit.t -> string
