let to_dot c =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph circuit {\n  rankdir=LR;\n";
  Array.iteri
    (fun w g ->
      let label, shape =
        match g with
        | Circuit.Input { party; index } -> (Printf.sprintf "in p%d[%d]" party index, "box")
        | Const b -> ((if b then "1" else "0"), "plaintext")
        | Not _ -> ("NOT", "invtriangle")
        | Xor _ -> ("XOR", "circle")
        | And _ -> ("AND", "circle")
      in
      Buffer.add_string buf (Printf.sprintf "  w%d [label=\"%s\" shape=%s];\n" w label shape);
      let edge src = Buffer.add_string buf (Printf.sprintf "  w%d -> w%d;\n" src w) in
      match g with
      | Input _ | Const _ -> ()
      | Not a -> edge a
      | Xor (a, b) | And (a, b) ->
          edge a;
          edge b)
    (Circuit.gates c);
  Array.iteri
    (fun i w ->
      Buffer.add_string buf (Printf.sprintf "  out%d [label=\"out[%d]\" shape=doublecircle];\n" i i);
      Buffer.add_string buf (Printf.sprintf "  w%d -> out%d;\n" w i))
    (Circuit.outputs c);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
