(** Unsigned fixed-point arithmetic gadgets.

    A Q(f) value represents x = w / 2^f for an unsigned word w.  The pure-MPC
    baseline protocol evaluates the whole β-calculation pipeline (Eq. 3 and
    Eq. 5: reciprocals, products, a square root) inside the circuit — this is
    precisely the "complex floating point computation" the paper's
    MPC-minimizing design pushes out of the secure part, and the reason the
    pure approach scales so poorly.  Fixed point stands in for Fairplay-era
    floating point; the magnitudes involved (σ, ε, β in [0, 1]) fit
    comfortably. *)

type t = {
  word : Word.word;
  frac_bits : int;
}

val of_word : Word.word -> frac_bits:int -> t

val constant : Circuit.Builder.t -> width:int -> frac_bits:int -> float -> t
(** Encode a non-negative float (rounded to the nearest representable
    value; saturates at the width). *)

val of_int_word : Circuit.Builder.t -> Word.word -> frac_bits:int -> t
(** Interpret an integer word as a fixed-point value (shift left by f). *)

val to_float : bool array -> frac_bits:int -> float
(** Decode evaluated output bits. *)

val add : Circuit.Builder.t -> t -> t -> t
(** Width grows by one bit; operands must share [frac_bits]. *)

val sub : Circuit.Builder.t -> t -> t -> t
(** Difference at the common width; unsigned semantics require the first
    operand to be at least the second. *)

val double : Circuit.Builder.t -> t -> t
(** Multiply by two (free: a one-bit shift). *)

val mul : Circuit.Builder.t -> t -> t -> width:int -> t
(** Product truncated back to Q(f) with the given result width. *)

val div : Circuit.Builder.t -> t -> t -> width:int -> t
(** Quotient in Q(f): (a << f) / b, truncated to [width] bits.  Division by
    zero saturates (all-ones quotient), matching {!Word.divmod}. *)

val div_by_int : Circuit.Builder.t -> t -> Word.word -> width:int -> t
(** Divide a Q(f) value by a plain integer word. *)

val sqrt : Circuit.Builder.t -> t -> t
(** Square root in Q(f): isqrt(w << f). *)

val ge : Circuit.Builder.t -> t -> t -> Circuit.wire
val output : Circuit.Builder.t -> t -> unit
