lib/circuit/word.mli: Circuit
