lib/circuit/word.ml: Array Circuit List
