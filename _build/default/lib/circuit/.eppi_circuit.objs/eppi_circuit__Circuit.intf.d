lib/circuit/circuit.mli: Format
