lib/circuit/fixedpoint.ml: Array Circuit Float Word
