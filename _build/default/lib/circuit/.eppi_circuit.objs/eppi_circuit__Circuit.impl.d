lib/circuit/circuit.ml: Array Format List
