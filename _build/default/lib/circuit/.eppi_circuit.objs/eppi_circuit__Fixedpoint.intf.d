lib/circuit/fixedpoint.mli: Circuit Word
