lib/circuit/dot.ml: Array Buffer Circuit Printf
