open Eppi_prelude

type t = {
  groups : int;
  assignment : int array;
  group_members : int array array;
}

let assign rng ~m ~groups =
  if groups < 1 || groups > m then invalid_arg "Grouping.assign: need 1 <= groups <= m";
  let providers = Array.init m Fun.id in
  Rng.shuffle rng providers;
  let assignment = Array.make m 0 in
  Array.iteri (fun slot provider -> assignment.(provider) <- slot mod groups) providers;
  let buckets = Array.make groups [] in
  Array.iteri (fun provider g -> buckets.(g) <- provider :: buckets.(g)) assignment;
  { groups; assignment; group_members = Array.map Array.of_list buckets }

let publish t ~membership =
  let published =
    Bitmatrix.map_rows
      (fun _owner row ->
        let out = Bitvec.create (Bitvec.length row) in
        let positive_groups = Array.make t.groups false in
        Bitvec.iter_set (fun provider -> positive_groups.(t.assignment.(provider)) <- true) row;
        Array.iteri
          (fun g hit -> if hit then Array.iter (fun p -> Bitvec.set out p) t.group_members.(g))
          positive_groups;
        out)
      membership
  in
  Eppi.Index.of_matrix published

let construct rng ~membership ~groups =
  let t = assign rng ~m:(Bitmatrix.cols membership) ~groups in
  (t, publish t ~membership)

let empirical_success rng ~frequency ~epsilon ~m ~groups ~trials =
  if trials <= 0 then invalid_arg "Grouping.empirical_success: trials must be positive";
  if frequency < 0 || frequency > m then invalid_arg "Grouping.empirical_success: bad frequency";
  if groups < 1 || groups > m then invalid_arg "Grouping.empirical_success: bad group count";
  if frequency = 0 then 1.0
  else begin
    (* Balanced groups: the first (m mod g) groups have one extra member. *)
    let base = m / groups and extra = m mod groups in
    let group_size g = base + if g < extra then 1 else 0 in
    let ok = ref 0 in
    let hit = Array.make groups false in
    for _ = 1 to trials do
      Array.fill hit 0 groups false;
      (* A fresh random assignment makes the group of each positive provider
         uniform; sampling positives without replacement then hitting their
         groups matches the matrix construction in distribution. *)
      let chosen = Rng.sample_without_replacement rng ~k:frequency ~n:m in
      Array.iter (fun provider -> hit.(provider mod groups) <- true) chosen;
      let returned = ref 0 in
      Array.iteri (fun g h -> if h then returned := !returned + group_size g) hit;
      let fp = float_of_int (!returned - frequency) /. float_of_int !returned in
      if fp >= epsilon then incr ok
    done;
    float_of_int !ok /. float_of_int trials
  end

let ss_ppi_common_attack_confidence ~membership ~sigma_threshold =
  let n = Bitmatrix.rows membership in
  let m = Bitmatrix.cols membership in
  let cutoff = sigma_threshold *. float_of_int m in
  let any = ref false in
  for j = 0 to n - 1 do
    if float_of_int (Bitmatrix.row_count membership j) >= cutoff then any := true
  done;
  if !any then 1.0 else 0.0
