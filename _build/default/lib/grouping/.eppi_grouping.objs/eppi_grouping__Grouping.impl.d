lib/grouping/grouping.ml: Array Bitmatrix Bitvec Eppi Eppi_prelude Fun Rng
