lib/grouping/grouping.mli: Bitmatrix Eppi Eppi_prelude Rng
