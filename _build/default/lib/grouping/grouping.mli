(** Grouping-based PPI baselines (paper Section VI-A and Appendix B).

    The prior art ε-PPI is compared against ([12], [13], SS-PPI [22])
    organizes providers into disjoint privacy groups inspired by
    k-anonymity: a group publishes 1 for an identity as soon as {i any}
    member holds it, and a query returns every provider of every positive
    group.  True positives hide among their group peers, but the resulting
    false-positive rate is whatever the random assignment happens to
    produce — no per-identity control, hence the paper's NO-GUARANTEE
    verdict, which Fig. 4 quantifies.

    The SS-PPI variant additionally discloses true identity frequencies to
    the (possibly colluding) providers during construction, which makes the
    common-identity attack succeed with certainty (NO-PROTECT): we model
    that leak with {!ss_ppi_common_attack_confidence}. *)

open Eppi_prelude

type t = {
  groups : int;  (** Number of groups g. *)
  assignment : int array;  (** provider -> group id. *)
  group_members : int array array;  (** group id -> member providers. *)
}

val assign : Rng.t -> m:int -> groups:int -> t
(** Random balanced assignment (shuffle + round-robin), the strategy the
    prior work uses.  @raise Invalid_argument unless [1 <= groups <= m]. *)

val publish : t -> membership:Bitmatrix.t -> Eppi.Index.t
(** Group-OR publication: owner j's published row has every provider of
    every group containing at least one true positive for j. *)

val construct : Rng.t -> membership:Bitmatrix.t -> groups:int -> t * Eppi.Index.t
(** Assignment + publication in one step. *)

val empirical_success :
  Rng.t -> frequency:int -> epsilon:float -> m:int -> groups:int -> trials:int -> float
(** Fast per-identity success-ratio estimator (no matrix): scatter
    [frequency] positives into a fresh random balanced grouping and test
    whether the resulting false-positive rate reaches ε.  Matches the
    matrix path in distribution (checked by tests). *)

val ss_ppi_common_attack_confidence : membership:Bitmatrix.t -> sigma_threshold:float -> float
(** Confidence of the common-identity attack against SS-PPI: the attacker
    reads the leaked true frequencies, so every flagged identity is truly
    common — 1.0 whenever any identity crosses the threshold, 0 otherwise. *)
