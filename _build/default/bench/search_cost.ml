(* Search overhead of the Chernoff policy vs epsilon — the experiment the
   paper's Section V-A2 defers to its technical report: "the high-level
   privacy preservation of the Chernoff bound policy comes with reasonable
   search overhead".

   We report, per epsilon: the analytic expected number of providers a
   QueryPPI returns, and the measured count plus wasted authorized contacts
   from a full locator-service search. *)

open Eppi_prelude

let m = 2000
let frequency = 20
let gamma = 0.9

let run () =
  Bench_util.heading
    "Search overhead vs epsilon (tech-report experiment; m=2000, frequency=20)";
  let table =
    Table.create
      ~header:[ "epsilon"; "beta"; "expected providers"; "measured providers"; "wasted contacts" ]
  in
  List.iter
    (fun epsilon ->
      let sigma = float_of_int frequency /. float_of_int m in
      let beta = Eppi.Policy.beta (Eppi.Policy.Chernoff gamma) ~sigma ~epsilon ~m in
      let expected = Eppi.Analysis.expected_query_cost ~beta ~frequency ~m in
      (* Measured through the locator service with a fully-granted searcher. *)
      let t = Eppi_locator.Locator.create ~providers:m ~owners:1 in
      let rng = Rng.create 77 in
      let chosen = Rng.sample_without_replacement rng ~k:frequency ~n:m in
      Array.iter
        (fun p ->
          Eppi_locator.Locator.delegate t ~owner:0 ~epsilon ~provider:p ~body:"record")
        chosen;
      Eppi_locator.Locator.construct_ppi ~seed:7 t ~policy:(Eppi.Policy.Chernoff gamma);
      for p = 0 to m - 1 do
        Eppi_locator.Locator.grant t ~provider:p ~searcher:"auditor" ~owner:0
      done;
      let outcome = Eppi_locator.Locator.search t ~searcher:"auditor" ~owner:0 in
      Table.add_row table
        [
          Table.cell_float epsilon;
          Table.cell_float (Float.min beta 1.0);
          Table.cell_float expected;
          Table.cell_int outcome.contacted;
          Table.cell_int outcome.wasted;
        ])
    [ 0.1; 0.3; 0.5; 0.7; 0.9 ];
  Table.print table;
  Bench_util.note
    "shape: query cost grows smoothly with epsilon - privacy is paid in contacts";

  (* Second comparison: the per-owner story behind the related-work claim
     that grouping "lacks per-owner concerns" and "leads to query
     broadcasting".  In a mixed population where only a few VIPs need high
     privacy, grouping must size its groups for the STRICTEST requirement —
     every query pays — while e-PPI prices each identity's own epsilon. *)
  Bench_util.heading
    "Per-owner pricing: mixed population, 10 percent VIPs at eps=0.9, rest at eps=0.2";
  let table2 =
    Table.create
      ~header:[ "system"; "mean query cost"; "VIP fp"; "non-VIP fp"; "VIPs protected?" ]
  in
  let vips = 10 and others = 90 in
  let fp_of_cost cost = (cost -. float_of_int frequency) /. cost in
  (* e-PPI: per-identity beta. *)
  let eppi_cost eps =
    let sigma = float_of_int frequency /. float_of_int m in
    let beta = Eppi.Policy.beta (Eppi.Policy.Chernoff gamma) ~sigma ~epsilon:eps ~m in
    Eppi.Analysis.expected_query_cost ~beta ~frequency ~m
  in
  let eppi_vip = eppi_cost 0.9 and eppi_other = eppi_cost 0.2 in
  let eppi_mean =
    ((float_of_int vips *. eppi_vip) +. (float_of_int others *. eppi_other)) /. 100.0
  in
  Table.add_row table2
    [
      "e-PPI (per-owner beta)";
      Table.cell_float eppi_mean;
      Table.cell_float (fp_of_cost eppi_vip);
      Table.cell_float (fp_of_cost eppi_other);
      "yes";
    ];
  (* Grouping: one group size for everyone.  To give VIPs fp >= 0.9 the
     group must hold >= f/(1-0.9) = 10f providers; every identity then
     returns whole groups. *)
  List.iter
    (fun (label, groups) ->
      let group_size = float_of_int m /. float_of_int groups in
      (* A frequency-20 identity hits about min(f, g) distinct groups. *)
      let hit =
        float_of_int groups
        *. (1.0 -. ((1.0 -. (1.0 /. float_of_int groups)) ** float_of_int frequency))
      in
      let cost = hit *. group_size in
      let fp = fp_of_cost cost in
      Table.add_row table2
        [
          label;
          Table.cell_float cost;
          Table.cell_float fp;
          Table.cell_float fp;
          (if fp >= 0.9 then "yes" else "no");
        ])
    [ ("grouping sized for non-VIPs (g=400)", 400); ("grouping sized for VIPs (g=10)", 10) ];
  Table.print table2;
  Bench_util.note
    "grouping has one knob for the whole network: either the VIPs are exposed";
  Bench_util.note
    "(g=400) or every query near-broadcasts (g=10).  e-PPI prices privacy per";
  Bench_util.note "owner, so the 90%% low-privacy owners stay cheap"
