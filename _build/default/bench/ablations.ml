(* Ablation studies for the two design choices DESIGN.md calls out:

   1. identity mixing on/off under the common-identity attack (validates
      Section III-C: without mixing the attacker wins with certainty;
      with mixing her confidence is bounded by 1 - xi);
   2. the collusion-tolerance knob c: SecSumShare traffic and the
      CountBelow circuit both grow with c — the price of tolerating more
      colluders. *)

open Eppi_prelude

let ablation_mixing () =
  Bench_util.heading "Ablation: identity mixing on/off (common-identity attack)";
  let m = 50 in
  let n = 300 in
  let epsilon = 0.75 in
  let threshold = Eppi.Policy.sigma_threshold Eppi.Policy.Basic ~epsilon ~m in
  let table =
    Table.create ~header:[ "seed"; "conf (mixing off)"; "conf (mixing on)"; "bound 1-xi" ]
  in
  let confidences = ref [] in
  for seed = 1 to 8 do
    let rng = Rng.create seed in
    let membership = Bitmatrix.create ~rows:n ~cols:m in
    for p = 0 to m - 1 do
      Bitmatrix.set membership ~row:0 ~col:p true
    done;
    for j = 1 to n - 1 do
      Bitmatrix.set membership ~row:j ~col:(Rng.int rng m) true
    done;
    let epsilons = Array.make n epsilon in
    (* Mixing OFF: publish with raw betas, commons at beta = 1, no decoys. *)
    let betas_off =
      Array.init n (fun j ->
          let sigma = float_of_int (Bitmatrix.row_count membership j) /. float_of_int m in
          Float.min 1.0 (Eppi.Policy.beta Eppi.Policy.Basic ~sigma ~epsilon ~m))
    in
    let published_off = Eppi.Publish.publish_matrix (Rng.create (seed * 31)) ~betas:betas_off membership in
    let off =
      (Eppi.Attack.common_identity_attack ~membership ~published:published_off
         ~sigma_threshold:threshold)
        .confidence
    in
    (* Mixing ON: the full construction. *)
    let r =
      Eppi.Construct.run (Rng.create (seed * 37)) ~membership ~epsilons ~policy:Eppi.Policy.Basic
    in
    let on =
      (Eppi.Attack.common_identity_attack ~membership
         ~published:(Eppi.Index.matrix r.index) ~sigma_threshold:threshold)
        .confidence
    in
    confidences := (off, on) :: !confidences;
    Table.add_row table
      [
        Table.cell_int seed;
        Table.cell_float off;
        Table.cell_float on;
        Table.cell_float (1.0 -. r.xi);
      ]
  done;
  Table.print table;
  let offs = List.map fst !confidences and ons = List.map snd !confidences in
  let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
  Bench_util.note "mean confidence: mixing off %.2f vs mixing on %.2f" (mean offs) (mean ons);
  Bench_util.note
    "Bernoulli mixing (the paper's Eq. 6) only holds the bound in expectation;";
  Bench_util.note
    "the exact-count extension pins the decoy count and holds it per draw:";
  (* Same scenario under the two mixing modes, per-seed bound check. *)
  let table2 =
    Table.create ~header:[ "mode"; "mean conf"; "worst conf"; "seeds over bound" ]
  in
  List.iter
    (fun mode ->
      let confs =
        List.init 8 (fun i ->
            let seed = i + 1 in
            let rng = Rng.create seed in
            let membership = Bitmatrix.create ~rows:n ~cols:m in
            for p = 0 to m - 1 do
              Bitmatrix.set membership ~row:0 ~col:p true
            done;
            for j = 1 to n - 1 do
              Bitmatrix.set membership ~row:j ~col:(Rng.int rng m) true
            done;
            let r =
              Eppi.Construct.run ~mixing:mode (Rng.create (seed * 37)) ~membership
                ~epsilons:(Array.make n epsilon) ~policy:Eppi.Policy.Basic
            in
            ( (Eppi.Attack.common_identity_attack ~membership
                 ~published:(Eppi.Index.matrix r.index) ~sigma_threshold:threshold)
                .confidence,
              1.0 -. r.xi ))
      in
      let values = List.map fst confs in
      let bound = snd (List.hd confs) in
      let mean = List.fold_left ( +. ) 0.0 values /. 8.0 in
      let worst = List.fold_left Float.max 0.0 values in
      let over = List.length (List.filter (fun v -> v > bound +. 1e-9) values) in
      Table.add_row table2
        [
          Eppi.Mixing.mode_name mode;
          Table.cell_float mean;
          Table.cell_float worst;
          Table.cell_int over;
        ])
    [ Eppi.Mixing.Bernoulli; Eppi.Mixing.Exact_count ];
  Table.print table2

let ablation_collusion () =
  Bench_util.heading "Ablation: collusion tolerance c (SecSumShare + CountBelow cost)";
  let m = 30 and n = 50 in
  let rng = Rng.create 9 in
  let inputs = Array.init m (fun _ -> Array.init n (fun _ -> Rng.int rng 2)) in
  let q = Eppi_protocol.Construct.modulus_for m in
  let table =
    Table.create
      ~header:
        [ "c"; "sss messages"; "sss bytes"; "sss time (s)"; "mpc gates"; "mpc time (s)" ]
  in
  List.iter
    (fun c ->
      let sss = Eppi_protocol.Secsumshare.run (Rng.create (c * 7)) ~inputs ~c ~q in
      let thresholds = Array.make n (Modarith.to_int q - 1) in
      let cb =
        Eppi_protocol.Countbelow.run (Rng.create (c * 11)) ~shares:sss.coordinator_shares ~q
          ~thresholds
      in
      Table.add_row table
        [
          Table.cell_int c;
          Table.cell_int sss.net.messages_sent;
          Table.cell_int sss.net.bytes_sent;
          Table.cell_float sss.net.completion_time;
          Table.cell_int cb.circuit_stats.size;
          Table.cell_float cb.time;
        ])
    [ 2; 3; 4; 5; 6 ];
  Table.print table;
  Bench_util.note
    "tolerating more colluders costs linearly more traffic and a larger MPC circuit"

let ablation_rebuild () =
  Bench_util.heading
    "Ablation: republication breaks privacy (why the index is static)";
  let m = 500 and frequency = 10 and epsilon = 0.7 in
  let rng = Rng.create 17 in
  let membership = Bitmatrix.create ~rows:1 ~cols:m in
  let chosen = Rng.sample_without_replacement rng ~k:frequency ~n:m in
  Array.iter (fun p -> Bitmatrix.set membership ~row:0 ~col:p true) chosen;
  let sigma = float_of_int frequency /. float_of_int m in
  let beta = Eppi.Policy.beta (Eppi.Policy.Chernoff 0.9) ~sigma ~epsilon ~m in
  let table =
    Table.create ~header:[ "rebuilds"; "intersected positives"; "attacker confidence" ]
  in
  List.iter
    (fun k ->
      let versions =
        List.init k (fun _ -> Eppi.Publish.publish_matrix rng ~betas:[| beta |] membership)
      in
      let conf =
        Eppi.Attack.intersection_attack ~membership ~published_list:versions ~owner:0
      in
      let survivors = int_of_float (Float.round (float_of_int frequency /. conf)) in
      Table.add_row table
        [
          Table.cell_int k;
          (if conf > 0.0 then Table.cell_int survivors else "-");
          Table.cell_float conf;
        ])
    [ 1; 2; 3; 5; 8 ];
  Table.print table;
  Bench_util.note
    "fresh-noise republication lets an attacker intersect versions; the paper's";
  Bench_util.note
    "design keeps the index static, so repetition adds nothing (Section III-C)"

let ablation_colluders () =
  Bench_util.heading "Ablation: colluding providers vs attacker confidence";
  let m = 500 and frequency = 10 and epsilon = 0.7 in
  let rng = Rng.create 19 in
  let membership = Bitmatrix.create ~rows:1 ~cols:m in
  let chosen = Rng.sample_without_replacement rng ~k:frequency ~n:m in
  Array.iter (fun p -> Bitmatrix.set membership ~row:0 ~col:p true) chosen;
  let sigma = float_of_int frequency /. float_of_int m in
  let beta = Eppi.Policy.beta (Eppi.Policy.Chernoff 0.9) ~sigma ~epsilon ~m in
  let table = Table.create ~header:[ "colluders"; "mean confidence"; "bound 1-eps" ] in
  List.iter
    (fun k ->
      (* Colluders are random providers (they mostly hold noise bits);
         average over fresh publications and colluder draws. *)
      let trials = 200 in
      let acc = ref 0.0 in
      for _ = 1 to trials do
        let published = Eppi.Publish.publish_matrix rng ~betas:[| beta |] membership in
        let colluders = Array.to_list (Rng.sample_without_replacement rng ~k ~n:m) in
        acc :=
          !acc +. Eppi.Attack.colluding_confidence ~membership ~published ~owner:0 ~colluders
      done;
      Table.add_row table
        [
          Table.cell_int k;
          Table.cell_float (!acc /. float_of_int trials);
          Table.cell_float (1.0 -. epsilon);
        ])
    [ 0; 100; 200; 300; 400; 450; 480 ];
  Table.print table;
  Bench_util.note
    "uniformly-random colluders do NOT beat the fp guarantee: discounting a";
  Bench_util.note
    "uniform subset preserves the true/noise ratio of the remaining positives";
  Bench_util.note
    "(it only dips near-total collusion, when no attackable positives remain).";
  Bench_util.note
    "The collusion risk the paper defends against is at CONSTRUCTION time -";
  Bench_util.note
    "fewer than c colluders learn nothing of the secure sums (Theorem 4.1)"

let run () =
  ablation_mixing ();
  ablation_collusion ();
  ablation_rebuild ();
  ablation_colluders ()
