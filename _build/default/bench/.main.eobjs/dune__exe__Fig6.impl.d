bench/fig6.ml: Array Bench_util Eppi Eppi_circuit Eppi_prelude Eppi_protocol Eppi_sfdl Eppi_simnet List Modarith Rng Table
