bench/fig5.ml: Bench_util Eppi Eppi_prelude List Rng Table
