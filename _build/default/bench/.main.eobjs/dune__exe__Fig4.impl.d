bench/fig4.ml: Bench_util Eppi Eppi_prelude List Printf Rng Table
