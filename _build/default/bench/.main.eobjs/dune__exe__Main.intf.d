bench/main.mli:
