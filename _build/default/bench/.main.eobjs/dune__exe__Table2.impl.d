bench/table2.ml: Array Bench_util Bitmatrix Eppi Eppi_grouping Eppi_prelude Float List Printf Rng Table
