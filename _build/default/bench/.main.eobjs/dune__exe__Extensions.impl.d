bench/extensions.ml: Array Bench_util Eppi_circuit Eppi_locator Eppi_mpc Eppi_prelude Eppi_sfdl List Rng Table
