bench/main.ml: Ablations Array Extensions Fig4 Fig5 Fig6 List Micro Printf Search_cost String Sys Table2
