bench/ablations.ml: Array Bench_util Bitmatrix Eppi Eppi_prelude Eppi_protocol Float List Modarith Rng Table
