bench/search_cost.ml: Array Bench_util Eppi Eppi_locator Eppi_prelude Float List Rng Table
