bench/bench_util.ml: Array Bitmatrix Eppi Eppi_grouping Eppi_prelude Printf Rng
