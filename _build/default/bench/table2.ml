(* Table II: privacy degrees of e-PPI against existing PPIs, under the
   primary and the common-identity attack.

   The paper's verdicts:
     grouping PPI [12,13]:  primary NO-GUARANTEE, common-identity NO-GUARANTEE
     SS-PPI [22]:           primary NO-GUARANTEE, common-identity NO-PROTECT
     e-PPI:                 primary e-PRIVATE,    common-identity e-PRIVATE

   We reproduce the verdicts empirically: a system is NO-GUARANTEE when its
   measured attack confidence varies with the dataset and can exceed the
   1 - epsilon target; NO-PROTECT when the design leaks the answer with
   certainty regardless of the data; e-PRIVATE when an analytic bound at
   most 1 - epsilon exists (and the measurements respect it). *)

open Eppi_prelude

let epsilon = 0.75
let m = 60

(* Two datasets: a benign one (rare identities only) and an adversarial one
   (a planted ubiquitous identity) — NO-GUARANTEE systems behave differently
   across them. *)
let dataset ~with_common seed =
  let rng = Rng.create seed in
  let n = 200 in
  let membership = Bitmatrix.create ~rows:n ~cols:m in
  if with_common then
    for p = 0 to m - 1 do
      Bitmatrix.set membership ~row:0 ~col:p true
    done
  else Bitmatrix.set membership ~row:0 ~col:(Rng.int rng m) true;
  for j = 1 to n - 1 do
    Bitmatrix.set membership ~row:j ~col:(Rng.int rng m) true
  done;
  membership

let sigma_threshold = Eppi.Policy.sigma_threshold Eppi.Policy.Basic ~epsilon ~m

(* Worst-case primary-attack confidence over identities. *)
let worst_primary ~membership ~published =
  let worst = ref 0.0 in
  for j = 0 to Bitmatrix.rows membership - 1 do
    worst := Float.max !worst (Eppi.Attack.primary_confidence ~membership ~published ~owner:j)
  done;
  !worst

type measured = {
  primary : float * float;  (* benign, adversarial *)
  common : float * float;
  primary_guarantee : float option;
  common_guarantee : float option;
  common_by_construction : bool;  (* leak independent of data (SS-PPI) *)
}

let measure_grouping () =
  let eval seed with_common =
    let membership = dataset ~with_common seed in
    let _, index =
      Eppi_grouping.Grouping.construct (Rng.create (seed + 1)) ~membership ~groups:12
    in
    let published = Eppi.Index.matrix index in
    let p = worst_primary ~membership ~published in
    let c =
      (Eppi.Attack.common_identity_attack ~membership ~published ~sigma_threshold).confidence
    in
    (p, c)
  in
  let pb, cb = eval 11 false in
  let pa, ca = eval 12 true in
  {
    primary = (pb, pa);
    common = (cb, ca);
    primary_guarantee = None;
    common_guarantee = None;
    common_by_construction = false;
  }

let measure_ss_ppi () =
  (* Same grouping index, but construction leaks true frequencies: the
     common-identity attack reads them directly. *)
  let base = measure_grouping () in
  let leak seed with_common =
    let membership = dataset ~with_common seed in
    Eppi_grouping.Grouping.ss_ppi_common_attack_confidence ~membership ~sigma_threshold
  in
  {
    base with
    common = (leak 11 false, leak 12 true);
    common_by_construction = true;
  }

let measure_eppi () =
  let eval seed with_common =
    let membership = dataset ~with_common seed in
    let n = Bitmatrix.rows membership in
    let epsilons = Array.make n epsilon in
    let r =
      Eppi.Construct.run (Rng.create (seed + 2)) ~membership ~epsilons
        ~policy:(Eppi.Policy.Chernoff 0.9)
    in
    let published = Eppi.Index.matrix r.index in
    (* For the primary attack, the worst confidence over the identities that
       are NOT common (common identities are covered by the mixing bound). *)
    let worst = ref 0.0 in
    for j = 0 to n - 1 do
      if not r.common.(j) then
        worst :=
          Float.max !worst (Eppi.Attack.primary_confidence ~membership ~published ~owner:j)
    done;
    let c =
      (Eppi.Attack.common_identity_attack ~membership ~published ~sigma_threshold).confidence
    in
    (!worst, c, r.xi)
  in
  let pb, cb, _ = eval 11 false in
  let pa, ca, xi = eval 12 true in
  {
    primary = (pb, pa);
    common = (cb, ca);
    primary_guarantee = Some (1.0 -. epsilon);
    common_guarantee = Some (1.0 -. xi);
    common_by_construction = false;
  }

let verdict ~guarantee ~by_construction (benign, adversarial) =
  match guarantee with
  | Some bound when bound <= 1.0 -. epsilon +. 1e-9 -> Eppi.Attack.E_private
  | Some _ | None ->
      if by_construction || (benign >= 1.0 -. 1e-9 && adversarial >= 1.0 -. 1e-9) then
        Eppi.Attack.No_protect
      else Eppi.Attack.No_guarantee

let run () =
  Bench_util.heading "Table II: privacy degrees under the two attacks (eps=0.75)";
  let table =
    Table.create
      ~header:
        [
          "system";
          "primary conf (benign/adv)";
          "primary degree";
          "common conf (benign/adv)";
          "common degree";
        ]
  in
  List.iter
    (fun (name, r) ->
      let cell (a, b) = Printf.sprintf "%.2f / %.2f" a b in
      Table.add_row table
        [
          name;
          cell r.primary;
          Eppi.Attack.level_name
            (verdict ~guarantee:r.primary_guarantee ~by_construction:false r.primary);
          cell r.common;
          Eppi.Attack.level_name
            (verdict ~guarantee:r.common_guarantee
               ~by_construction:r.common_by_construction r.common);
        ])
    [
      ("Grouping PPI [12,13]", measure_grouping ());
      ("SS-PPI [22]", measure_ss_ppi ());
      ("e-PPI", measure_eppi ());
    ];
  Table.print table;
  Bench_util.note "paper verdicts: grouping NO-GUARANTEE/NO-GUARANTEE;";
  Bench_util.note "SS-PPI NO-GUARANTEE/NO-PROTECT; e-PPI e-PRIVATE/e-PRIVATE"
