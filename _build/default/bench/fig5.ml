(* Figure 5: quality of privacy preservation across the three beta policies.
   Settings from the paper: delta = 0.02 (incremented expectation),
   gamma = 0.9 (Chernoff), epsilon = 0.5.

   Fig. 5a: 10,000 providers, identity frequency swept 0..500.
   Fig. 5b: frequency fixed at sigma = 0.1, provider count swept 8..8192.

   Expected shape: Chernoff ~1.0 everywhere; basic ~0.5; inc-exp close to
   1.0 in easy regimes but dropping for high frequencies (5a) and for few
   providers (5b). *)

open Eppi_prelude

let epsilon = 0.5
let samples = 20
let trials = 40

let policies =
  [
    ("basic", Eppi.Policy.Basic);
    ("inc-exp(0.02)", Eppi.Policy.Inc_exp 0.02);
    ("chernoff(0.9)", Eppi.Policy.Chernoff 0.9);
  ]

let fig5a () =
  Bench_util.heading
    "Figure 5a: success ratio vs identity frequency (m=10000, eps=0.5)";
  let rng = Rng.create 5001 in
  let m = 10_000 in
  let frequencies = [ 1; 34; 100; 200; 300; 400; 500 ] in
  let table =
    Table.create
      ~header:
        ("frequency"
        :: (List.map fst policies @ List.map (fun (name, _) -> name ^ " exact") policies))
  in
  List.iter
    (fun frequency ->
      let sampled =
        List.map
          (fun (_, policy) ->
            Table.cell_float
              (Bench_util.eppi_success rng ~policy ~frequency ~epsilon ~m ~samples ~trials))
          policies
      in
      (* Closed-form binomial-tail check alongside the simulation. *)
      let exact =
        List.map
          (fun (_, policy) ->
            let beta =
              Eppi.Policy.beta policy
                ~sigma:(float_of_int frequency /. float_of_int m)
                ~epsilon ~m
            in
            Table.cell_float (Eppi.Analysis.exact_success ~beta ~frequency ~epsilon ~m))
          policies
      in
      Table.add_row table ((Table.cell_int frequency :: sampled) @ exact))
    frequencies;
  Table.print table;
  Bench_util.note "paper shape: chernoff ~1.0; basic ~0.5; inc-exp sags at high frequency";
  Bench_util.note
    "the exact columns are the closed-form binomial tails - the simulation tracks them"

let fig5b () =
  Bench_util.heading
    "Figure 5b: success ratio vs number of providers (sigma=0.1, eps=0.5)";
  let rng = Rng.create 5002 in
  let provider_counts = [ 8; 32; 128; 512; 2048; 8192 ] in
  let table = Table.create ~header:("providers" :: List.map fst policies) in
  List.iter
    (fun m ->
      let frequency = max 1 (m / 10) in
      Table.add_row table
        (Table.cell_int m
        :: List.map
             (fun (_, policy) ->
               Table.cell_float
                 (Bench_util.eppi_success rng ~policy ~frequency ~epsilon ~m ~samples ~trials))
             policies))
    provider_counts;
  Table.print table;
  Bench_util.note "paper shape: chernoff ~1.0 at all scales; inc-exp weak for few providers"

let run () =
  fig5a ();
  fig5b ()
