(* Bechamel micro-benchmarks of the hot primitives: one Test.make per
   operation, reported as estimated ns/run by OLS over monotonic-clock
   samples. *)

open Bechamel
open Toolkit
open Eppi_prelude

let publish_row_test =
  let rng = Rng.create 1 in
  let row = Bitvec.create 10_000 in
  let chosen = Rng.sample_without_replacement rng ~k:100 ~n:10_000 in
  Array.iter (fun p -> Bitvec.set row p) chosen;
  Test.make ~name:"publish_row m=10000 beta=0.1"
    (Staged.stage (fun () -> ignore (Eppi.Publish.publish_row rng ~beta:0.1 row)))

let share_test =
  let rng = Rng.create 2 in
  let q = Modarith.modulus 10_007 in
  Test.make ~name:"additive share c=3"
    (Staged.stage (fun () -> ignore (Eppi_secretshare.Additive.share rng ~q ~c:3 1)))

let beta_test =
  Test.make ~name:"chernoff beta"
    (Staged.stage (fun () ->
         ignore
           (Eppi.Policy.beta (Eppi.Policy.Chernoff 0.9) ~sigma:0.01 ~epsilon:0.5 ~m:10_000)))

let binomial_test =
  let rng = Rng.create 3 in
  Test.make ~name:"binomial n=10000 p=0.1"
    (Staged.stage (fun () -> ignore (Sampling.binomial rng ~n:10_000 ~p:0.1)))

let circuit_eval_test =
  let compiled =
    Eppi_sfdl.Compile.compile_source
      (Eppi_sfdl.Programs.count_below ~c:3 ~q:1031 ~thresholds:(Array.make 8 500))
  in
  let rng = Rng.create 4 in
  let q = Modarith.modulus 1031 in
  let shares =
    Array.init 8 (fun _ -> Eppi_secretshare.Additive.share rng ~q ~c:3 (Rng.int rng 1031))
  in
  let svec k = Array.map (fun sh -> sh.(k)) shares in
  let inputs =
    Eppi_sfdl.Compile.encode_inputs compiled
      [
        ("s0", Eppi_sfdl.Compile.Dints (svec 0));
        ("s1", Eppi_sfdl.Compile.Dints (svec 1));
        ("s2", Eppi_sfdl.Compile.Dints (svec 2));
      ]
  in
  Test.make ~name:"count_below circuit eval (8 identities)"
    (Staged.stage (fun () -> ignore (Eppi_circuit.Circuit.eval compiled.circuit ~inputs)))

let gmw_test =
  let compiled = Eppi_sfdl.Compile.compile_source (Eppi_sfdl.Programs.millionaires ~width:16) in
  let inputs =
    Eppi_sfdl.Compile.encode_inputs compiled
      [ ("a", Eppi_sfdl.Compile.Dint 12345); ("b", Eppi_sfdl.Compile.Dint 54321) ]
  in
  let rng = Rng.create 5 in
  Test.make ~name:"gmw millionaires 16-bit"
    (Staged.stage (fun () -> ignore (Eppi_mpc.Gmw.execute rng compiled.circuit ~inputs)))

let run () =
  Bench_util.heading "Micro-benchmarks (bechamel, ns/run via OLS)";
  let tests =
    Test.make_grouped ~name:"eppi"
      [ publish_row_test; share_test; beta_test; binomial_test; circuit_eval_test; gmw_test ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~stabilize:true () in
  let raw = Benchmark.all cfg instances tests in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun _measure tbl ->
      let rows = Hashtbl.fold (fun name ols_result acc -> (name, ols_result) :: acc) tbl [] in
      List.iter
        (fun (name, ols_result) ->
          match Analyze.OLS.estimates ols_result with
          | Some (estimate :: _) -> Printf.printf "  %-45s %14.1f ns/run\n" name estimate
          | Some [] | None -> Printf.printf "  %-45s (no estimate)\n" name)
        (List.sort compare rows))
    merged
