(* Figure 6: performance of the index construction protocol — the
   MPC-reduced e-PPI protocol against the Pure-MPC baseline.

   6a: execution time vs number of parties (3..9), single identity;
   6b: compiled circuit size vs number of parties (3..61), single identity;
   6c: execution time vs number of identities (1..1000), 3-party network.

   Times are simulated seconds from the cost model over an Emulab-like LAN
   (see DESIGN.md); shapes, not absolute values, are the comparison target:
   Pure-MPC grows superlinearly in both parties and identities, e-PPI stays
   flat/slow-growing because its generic-MPC part is pinned to c = 3
   coordinators and a small per-identity circuit. *)

open Eppi_prelude

let epsilon = 0.5
let gamma = 0.9
let c = 3

(* e-PPI beta-phase time measured by actually running the distributed
   protocol (SecSumShare over simnet + CountBelow).  [transport] selects
   the cost-model estimate or the network-emergent MPC time. *)
let eppi_time ?transport ~m ~identities () =
  let rng = Rng.create (100 + m + identities) in
  let freqs = Array.init identities (fun j -> 1 + (j mod m)) in
  let membership = Bench_util.matrix_of_frequencies rng ~m ~freqs in
  let epsilons = Array.make identities epsilon in
  let r =
    Eppi_protocol.Construct.run ?transport (Rng.create 61) ~membership ~epsilons
      ~policy:(Eppi.Policy.Chernoff gamma)
  in
  r.metrics.secsumshare_time +. r.metrics.mpc_time

let fig6a () =
  Bench_util.heading
    "Figure 6a: execution time vs number of parties (single identity, c=3)";
  let table =
    Table.create
      ~header:[ "parties"; "e-PPI (s)"; "e-PPI emergent (s)"; "Pure-MPC (s)" ]
  in
  List.iter
    (fun m ->
      let eppi = eppi_time ~m ~identities:1 () in
      let emergent =
        eppi_time ~transport:(`Simnet Eppi_simnet.Simnet.default_config) ~m ~identities:1 ()
      in
      let pure = Eppi_protocol.Purempc.estimate_time ~m ~identities:1 ~epsilon ~gamma () in
      Table.add_row table
        [
          Table.cell_int m;
          Table.cell_float eppi;
          Table.cell_float emergent;
          Table.cell_float pure;
        ])
    [ 3; 4; 5; 6; 7; 8; 9 ];
  Table.print table;
  Bench_util.note "paper shape: pure-MPC superlinear; e-PPI flat/slow-growing";
  Bench_util.note
    "(the emergent column runs the MPC round-by-round over the simulated LAN)"

let eppi_circuit_size ~m ~identities =
  let q = Modarith.to_int (Eppi_protocol.Construct.modulus_for m) in
  let thresholds = Array.make identities ((q - 1) / 2) in
  let compiled =
    Eppi_sfdl.Compile.compile_source (Eppi_sfdl.Programs.count_below ~c ~q ~thresholds)
  in
  (Eppi_circuit.Circuit.stats compiled.circuit).size

let fig6b () =
  Bench_util.heading "Figure 6b: compiled circuit size vs number of parties (single identity)";
  let table = Table.create ~header:[ "parties"; "e-PPI gates"; "Pure-MPC gates" ] in
  List.iter
    (fun m ->
      let eppi = eppi_circuit_size ~m ~identities:1 in
      let pure = (Eppi_protocol.Purempc.stats_for ~m ~identities:1 ~epsilon ~gamma).size in
      Table.add_row table [ Table.cell_int m; Table.cell_int eppi; Table.cell_int pure ])
    [ 3; 11; 21; 31; 41; 51; 61 ];
  Table.print table;
  Bench_util.note "paper shape: pure-MPC grows linearly with a large slope; e-PPI's MPC";
  Bench_util.note "is pinned to c=3 coordinators so its circuit grows only with log q"

let fig6c () =
  Bench_util.heading "Figure 6c: execution time vs number of identities (3-party network)";
  let table = Table.create ~header:[ "identities"; "e-PPI (s)"; "Pure-MPC (s)" ] in
  List.iter
    (fun identities ->
      let eppi =
        Eppi_protocol.Construct.beta_phase_time_estimate ~m:3 ~identities ~c ()
      in
      let pure = Eppi_protocol.Purempc.estimate_time ~m:3 ~identities ~epsilon ~gamma () in
      Table.add_row table
        [ Table.cell_int identities; Table.cell_float eppi; Table.cell_float pure ])
    [ 1; 10; 100; 1000 ];
  Table.print table;
  Bench_util.note
    "paper shape: both grow with identities, pure-MPC at a much steeper slope";
  Bench_util.note
    "(its per-identity circuit carries the whole Eq. 5 fixed-point pipeline)"

let run () =
  fig6a ();
  fig6b ();
  fig6c ()
