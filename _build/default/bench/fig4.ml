(* Figure 4: non-grouping e-PPI vs grouping PPIs, success ratio of privacy
   preservation.  Paper settings: 10,000 providers, expected false-positive
   rate (epsilon) 0.8, grouping tested at several group counts, 20 samples
   averaged per point.

   Fig. 4a sweeps the identity frequency (34..446 of 10,000); Fig. 4b sweeps
   epsilon.  Expected shape: the non-grouping curves stay at ~1.0 across the
   board; the grouping curves fluctuate and collapse as epsilon grows. *)

open Eppi_prelude

let m = 10_000
let group_counts = [ 400; 1000; 2000; 2500 ]
let samples = 20
let trials = 40 (* per estimator sample, totalling 800 draws per point *)

let systems =
  [
    ("NG-IncExp-0.01", `Eppi (Eppi.Policy.Inc_exp 0.01));
    ("NG-Chernoff-0.9", `Eppi (Eppi.Policy.Chernoff 0.9));
  ]
  @ List.map (fun g -> (Printf.sprintf "Grouping-%d" g, `Grouping g)) group_counts

let success rng system ~frequency ~epsilon =
  match system with
  | `Eppi policy ->
      Bench_util.eppi_success rng ~policy ~frequency ~epsilon ~m ~samples ~trials
  | `Grouping groups ->
      Bench_util.grouping_success rng ~frequency ~epsilon ~m ~groups ~samples ~trials

let fig4a () =
  Bench_util.heading
    "Figure 4a: success ratio vs identity frequency (m=10000, eps=0.8)";
  let rng = Rng.create 4001 in
  let frequencies = [ 34; 67; 100; 134; 176; 234; 446 ] in
  let table =
    Table.create ~header:("frequency" :: List.map fst systems)
  in
  List.iter
    (fun frequency ->
      let row =
        Table.cell_int frequency
        :: List.map
             (fun (_, system) ->
               Table.cell_float (success rng system ~frequency ~epsilon:0.8))
             systems
      in
      Table.add_row table row)
    frequencies;
  Table.print table;
  Bench_util.note
    "paper shape: non-grouping ~1.0 and stable; grouping unstable/low at eps = 0.8"

let fig4b () =
  Bench_util.heading "Figure 4b: success ratio vs epsilon (m=10000)";
  let rng = Rng.create 4002 in
  (* The paper evaluates over the dataset's identity mix; we average over a
     representative frequency spread. *)
  let frequency_mix = [ 34; 100; 234; 446 ] in
  let epsilons = [ 0.1; 0.3; 0.5; 0.7; 0.9 ] in
  let table = Table.create ~header:("epsilon" :: List.map fst systems) in
  List.iter
    (fun epsilon ->
      let row =
        Table.cell_float epsilon
        :: List.map
             (fun (_, system) ->
               let acc =
                 List.fold_left
                   (fun acc frequency -> acc +. success rng system ~frequency ~epsilon)
                   0.0 frequency_mix
               in
               Table.cell_float (acc /. float_of_int (List.length frequency_mix)))
             systems
      in
      Table.add_row table row)
    epsilons;
  Table.print table;
  Bench_util.note
    "paper shape: grouping degrades toward 0 as epsilon grows; non-grouping stays ~1.0"

let run () =
  fig4a ();
  fig4b ()
