(* Benches for the layers this repository adds around the paper's core:
   the Crowds searcher-anonymity layer and the garbled-circuit backend
   (Fairplay's own evaluation strategy) compared with GMW on traffic. *)

open Eppi_prelude

let anonymity () =
  Bench_util.heading "Searcher anonymity: Crowds forwarding layer (n=40, c=4 colluders)";
  let table =
    Table.create
      ~header:
        [
          "p_f";
          "mean path";
          "expected path";
          "predecessor confidence";
          "probable innocence?";
        ]
  in
  List.iter
    (fun pf ->
      let config = { Eppi_locator.Anonymity.members = 40; forward_probability = pf } in
      let rng = Rng.create 31 in
      let trials = 1500 in
      let hops = ref 0 in
      for _ = 1 to trials do
        let o = Eppi_locator.Anonymity.simulate_query rng config ~initiator:10 in
        hops := !hops + o.hops
      done;
      let conf =
        Eppi_locator.Anonymity.predecessor_confidence (Rng.create 32) config ~colluders:4
          ~trials:1500
      in
      Table.add_row table
        [
          Table.cell_float pf;
          Table.cell_float (float_of_int !hops /. float_of_int trials);
          Table.cell_float (Eppi_locator.Anonymity.expected_path_length ~forward_probability:pf);
          Table.cell_float conf;
          (if
             Eppi_locator.Anonymity.probable_innocence ~members:40 ~forward_probability:pf
               ~colluders:4
           then "yes"
           else "no");
        ])
    [ 0.0; 0.5; 0.6; 0.75; 0.9 ];
  Table.print table;
  Bench_util.note
    "higher forwarding probability buys lower predecessor confidence at the";
  Bench_util.note "price of longer paths (latency); pf <= 1/2 gives no guarantee at all"

let backends () =
  Bench_util.heading
    "MPC backend comparison: GMW vs garbled circuits (CountBelow, c = 2 coordinators)";
  let table =
    Table.create
      ~header:[ "identities"; "and gates"; "gmw bytes"; "gmw rounds"; "garbled bytes"; "rounds" ]
  in
  List.iter
    (fun n ->
      let thresholds = Array.make n 500 in
      let compiled =
        Eppi_sfdl.Compile.compile_source
          (Eppi_sfdl.Programs.count_below ~c:2 ~q:1031 ~thresholds)
      in
      let stats = Eppi_circuit.Circuit.stats compiled.circuit in
      let outputs = Array.length (Eppi_circuit.Circuit.outputs compiled.circuit) in
      let gmw = Eppi_mpc.Gmw.comm_estimate ~parties:2 stats ~outputs in
      let evaluator_inputs = Eppi_circuit.Circuit.input_width compiled.circuit 1 in
      let garbled = Eppi_mpc.Garbled.comm_estimate stats ~evaluator_inputs in
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_int stats.and_gates;
          Table.cell_int gmw.bytes;
          Table.cell_int gmw.rounds;
          Table.cell_int (garbled.garbled_tables_bytes + garbled.label_transfer_bytes);
          "2";
        ])
    [ 1; 10; 100 ];
  Table.print table;
  Bench_util.note
    "the classic trade-off: garbled circuits ship ~32 bytes per AND but run in";
  Bench_util.note
    "constant rounds; GMW ships bits but pays a round per AND layer - on a WAN";
  Bench_util.note "the garbled (Fairplay) strategy wins, which is what the paper used"

let run () =
  anonymity ();
  backends ()
