(* Shared helpers for the experiment harness. *)

open Eppi_prelude

let heading title =
  Printf.printf "\n==================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==================================================================\n"

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  %s\n" s) fmt

(* Success ratio of the e-PPI fast path averaged over [samples] estimator
   runs (the paper samples 20 times and averages). *)
let eppi_success rng ~policy ~frequency ~epsilon ~m ~samples ~trials =
  let acc = ref 0.0 in
  for _ = 1 to samples do
    acc :=
      !acc +. Eppi.Analysis.empirical_success rng ~policy ~frequency ~epsilon ~m ~trials
  done;
  !acc /. float_of_int samples

let grouping_success rng ~frequency ~epsilon ~m ~groups ~samples ~trials =
  let acc = ref 0.0 in
  for _ = 1 to samples do
    acc :=
      !acc +. Eppi_grouping.Grouping.empirical_success rng ~frequency ~epsilon ~m ~groups ~trials
  done;
  !acc /. float_of_int samples

(* A membership matrix with one planted row per requested frequency. *)
let matrix_of_frequencies rng ~m ~freqs =
  let membership = Bitmatrix.create ~rows:(Array.length freqs) ~cols:m in
  Array.iteri
    (fun j f ->
      let chosen = Rng.sample_without_replacement rng ~k:f ~n:m in
      Array.iter (fun p -> Bitmatrix.set membership ~row:j ~col:p true) chosen)
    freqs;
  membership
