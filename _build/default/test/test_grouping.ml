(* Tests for the grouping-PPI baseline: assignment balance, group-OR
   publication, agreement between the fast estimator and the matrix path,
   and the structural weaknesses the paper attributes to grouping. *)

open Eppi_prelude
open Eppi_grouping

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_assignment_balanced () =
  let rng = Rng.create 1 in
  let g = Grouping.assign rng ~m:103 ~groups:10 in
  check_int "group count" 10 g.groups;
  let sizes = Array.map Array.length g.group_members in
  Array.iter (fun s -> check_bool "balanced" true (s = 10 || s = 11)) sizes;
  check_int "covers all providers" 103 (Array.fold_left ( + ) 0 sizes)

let test_assignment_consistent () =
  let rng = Rng.create 2 in
  let g = Grouping.assign rng ~m:50 ~groups:7 in
  Array.iteri
    (fun grp members ->
      Array.iter
        (fun p -> check_int (Printf.sprintf "provider %d" p) grp g.assignment.(p))
        members)
    g.group_members

let test_assignment_validation () =
  let rng = Rng.create 3 in
  Alcotest.check_raises "groups > m" (Invalid_argument "Grouping.assign: need 1 <= groups <= m")
    (fun () -> ignore (Grouping.assign rng ~m:5 ~groups:10))

let test_publish_group_or () =
  (* Hand-checkable: 6 providers, 3 groups; owner at providers 0 and 1. *)
  let rng = Rng.create 4 in
  let membership = Bitmatrix.create ~rows:1 ~cols:6 in
  Bitmatrix.set membership ~row:0 ~col:0 true;
  Bitmatrix.set membership ~row:0 ~col:1 true;
  let g, index = Grouping.construct rng ~membership ~groups:3 in
  (* Every member of the groups containing providers 0 and 1 must be
     published positive; nothing else. *)
  let expected_groups = [ g.assignment.(0); g.assignment.(1) ] in
  for p = 0 to 5 do
    let should = List.mem g.assignment.(p) expected_groups in
    check_bool (Printf.sprintf "provider %d" p) should
      (List.mem p (Eppi.Index.query index ~owner:0))
  done

let test_publish_recall () =
  let rng = Rng.create 5 in
  let membership = Bitmatrix.create ~rows:5 ~cols:100 in
  let mrng = Rng.create 50 in
  for j = 0 to 4 do
    let chosen = Rng.sample_without_replacement mrng ~k:(5 * (j + 1)) ~n:100 in
    Array.iter (fun p -> Bitmatrix.set membership ~row:j ~col:p true) chosen
  done;
  let _, index = Grouping.construct rng ~membership ~groups:10 in
  for j = 0 to 4 do
    check_bool (Printf.sprintf "recall owner %d" j) true
      (Eppi.Index.recall_ok ~membership index ~owner:j)
  done

let test_publish_empty_row () =
  let rng = Rng.create 6 in
  let membership = Bitmatrix.create ~rows:1 ~cols:20 in
  let _, index = Grouping.construct rng ~membership ~groups:4 in
  check_int "empty stays empty" 0 (Eppi.Index.query_count index ~owner:0)

let test_single_group_broadcast () =
  let rng = Rng.create 7 in
  let membership = Bitmatrix.create ~rows:1 ~cols:20 in
  Bitmatrix.set membership ~row:0 ~col:3 true;
  let _, index = Grouping.construct rng ~membership ~groups:1 in
  check_int "one group returns everyone" 20 (Eppi.Index.query_count index ~owner:0)

let test_fast_estimator_matches_matrix () =
  (* Distribution agreement between the per-identity estimator and full
     matrix constructions. *)
  let m = 200 and frequency = 8 and groups = 20 and epsilon = 0.5 in
  let fast =
    Grouping.empirical_success (Rng.create 8) ~frequency ~epsilon ~m ~groups ~trials:3000
  in
  let trials = 600 in
  let rng = Rng.create 9 in
  let ok = ref 0 in
  for _ = 1 to trials do
    let membership = Bitmatrix.create ~rows:1 ~cols:m in
    let chosen = Rng.sample_without_replacement rng ~k:frequency ~n:m in
    Array.iter (fun p -> Bitmatrix.set membership ~row:0 ~col:p true) chosen;
    let _, index = Grouping.construct rng ~membership ~groups in
    let published = Eppi.Index.matrix index in
    if Eppi.Metrics.owner_success ~membership ~published ~epsilon ~owner:0 then incr ok
  done;
  let slow = float_of_int !ok /. float_of_int trials in
  check_bool (Printf.sprintf "fast %f vs matrix %f" fast slow) true (Float.abs (fast -. slow) < 0.1)

let test_no_per_identity_control () =
  (* The paper's core critique: grouping cannot satisfy a high-epsilon
     owner once the group size is the binding constraint.  With 10
     providers per group and frequency 5, the best possible fp is
     (50 - 5)/50 = 0.9 < 0.95. *)
  let rate =
    Grouping.empirical_success (Rng.create 10) ~frequency:5 ~epsilon:0.95 ~m:1000 ~groups:100
      ~trials:2000
  in
  check_bool "high epsilon unreachable" true (rate < 0.05)

let test_frequency_zero_always_succeeds () =
  Alcotest.(check (float 0.0)) "empty rows trivially private" 1.0
    (Grouping.empirical_success (Rng.create 11) ~frequency:0 ~epsilon:0.9 ~m:100 ~groups:10
       ~trials:10)

let test_ss_ppi_leak () =
  let membership = Bitmatrix.create ~rows:2 ~cols:10 in
  for p = 0 to 9 do
    Bitmatrix.set membership ~row:0 ~col:p true
  done;
  Bitmatrix.set membership ~row:1 ~col:0 true;
  Alcotest.(check (float 0.0)) "common identity fully exposed" 1.0
    (Grouping.ss_ppi_common_attack_confidence ~membership ~sigma_threshold:0.9);
  Alcotest.(check (float 0.0)) "no commons, no attack" 0.0
    (Grouping.ss_ppi_common_attack_confidence ~membership ~sigma_threshold:1.1)

let test_grouping_common_identity_vulnerability () =
  (* Appendix B example: one ubiquitous owner among singletons is visible
     through any grouping with more than one group. *)
  let m = 60 in
  let membership = Bitmatrix.create ~rows:10 ~cols:m in
  for p = 0 to m - 1 do
    Bitmatrix.set membership ~row:0 ~col:p true
  done;
  for j = 1 to 9 do
    Bitmatrix.set membership ~row:j ~col:j true
  done;
  let rng = Rng.create 12 in
  let _, index = Grouping.construct rng ~membership ~groups:6 in
  let published = Eppi.Index.matrix index in
  let r = Eppi.Attack.common_identity_attack ~membership ~published ~sigma_threshold:0.9 in
  (* Rare owners blow up to at most one group (m/6 = 10 providers < 0.9m),
     so the ubiquitous owner is the only suspect. *)
  check_int "only true common suspected" 1 (List.length r.suspected);
  Alcotest.(check (float 0.0)) "attack certain" 1.0 r.confidence

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"published count multiple of group structure" ~count:100
      (triple small_int (int_range 1 20) (int_range 1 10))
      (fun (seed, freq, groups) ->
        let m = 60 in
        let freq = min freq m in
        let rng = Rng.create seed in
        let membership = Bitmatrix.create ~rows:1 ~cols:m in
        let chosen = Rng.sample_without_replacement rng ~k:freq ~n:m in
        Array.iter (fun p -> Bitmatrix.set membership ~row:0 ~col:p true) chosen;
        let g, index = Grouping.construct rng ~membership ~groups in
        (* The published row must be exactly the union of hit groups. *)
        let hit = Array.make groups false in
        Array.iter (fun p -> hit.(g.assignment.(p)) <- true) chosen;
        let expected =
          Array.to_list g.group_members
          |> List.mapi (fun grp members -> if hit.(grp) then Array.to_list members else [])
          |> List.concat |> List.sort compare
        in
        Eppi.Index.query index ~owner:0 = expected);
  ]

let () =
  Alcotest.run "grouping"
    [
      ( "assignment",
        [
          Alcotest.test_case "balanced" `Quick test_assignment_balanced;
          Alcotest.test_case "consistent" `Quick test_assignment_consistent;
          Alcotest.test_case "validation" `Quick test_assignment_validation;
        ] );
      ( "publish",
        [
          Alcotest.test_case "group OR" `Quick test_publish_group_or;
          Alcotest.test_case "recall" `Quick test_publish_recall;
          Alcotest.test_case "empty row" `Quick test_publish_empty_row;
          Alcotest.test_case "single group broadcast" `Quick test_single_group_broadcast;
        ] );
      ( "privacy",
        [
          Alcotest.test_case "fast estimator matches matrix" `Quick
            test_fast_estimator_matches_matrix;
          Alcotest.test_case "no per-identity control" `Quick test_no_per_identity_control;
          Alcotest.test_case "frequency zero" `Quick test_frequency_zero_always_succeeds;
          Alcotest.test_case "ss-ppi leak" `Quick test_ss_ppi_leak;
          Alcotest.test_case "common-identity vulnerability" `Quick
            test_grouping_common_identity_vulnerability;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
