(* Tests for the mini-SFDL front end: lexer, parser, typechecker and the
   circuit compiler's semantics (checked by plaintext evaluation). *)

open Eppi_sfdl
module Circuit = Eppi_circuit.Circuit

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Compile a program, run it with named inputs, return named outputs. *)
let run_program src values =
  let compiled = Compile.compile_source src in
  let inputs = Compile.encode_inputs compiled values in
  let bits = Circuit.eval compiled.circuit ~inputs in
  Compile.decode_outputs compiled bits

let get_int outputs name =
  match Compile.lookup_output outputs name with
  | Compile.Dint v -> v
  | _ -> Alcotest.fail (name ^ " is not an int output")

let get_bool outputs name =
  match Compile.lookup_output outputs name with
  | Compile.Dbool v -> v
  | _ -> Alcotest.fail (name ^ " is not a bool output")

let get_ints outputs name =
  match Compile.lookup_output outputs name with
  | Compile.Dints v -> v
  | _ -> Alcotest.fail (name ^ " is not an int-array output")

(* ---------- lexer ---------- *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize "program x; const A = 10; // comment\n main { }" in
  let kinds = List.map (fun (l : Lexer.lexeme) -> l.token) toks in
  check_bool "has program kw" true (List.mem (Lexer.KW "program") kinds);
  check_bool "has ident" true (List.mem (Lexer.IDENT "x") kinds);
  check_bool "has int" true (List.mem (Lexer.INT 10) kinds);
  check_bool "comment stripped" false
    (List.exists (function Lexer.IDENT "comment" -> true | _ -> false) kinds);
  check_bool "ends with eof" true (List.mem Lexer.EOF kinds)

let test_lexer_two_char_punct () =
  let toks = Lexer.tokenize "<= >= == != && || .." in
  let puncts =
    List.filter_map (fun (l : Lexer.lexeme) ->
        match l.token with Lexer.PUNCT p -> Some p | _ -> None)
      toks
  in
  Alcotest.(check (list string)) "longest match" [ "<="; ">="; "=="; "!="; "&&"; "||"; ".." ] puncts

let test_lexer_positions () =
  let toks = Lexer.tokenize "a\n  b" in
  match toks with
  | [ a; b; _eof ] ->
      check_int "a line" 1 a.Lexer.pos.line;
      check_int "b line" 2 b.Lexer.pos.line;
      check_int "b col" 3 b.Lexer.pos.col
  | _ -> Alcotest.fail "unexpected token count"

let test_lexer_bad_char () =
  Alcotest.check_raises "unexpected char"
    (Lexer.Error ("unexpected character '@'", { Ast.line = 1; col = 1 }))
    (fun () -> ignore (Lexer.tokenize "@"))

(* ---------- parser ---------- *)

let test_parser_minimal () =
  let p = Parser.parse "program tiny; party a; input x : bool of a; output y : bool; main { y = x; }" in
  check_int "decl count" 3 (List.length p.decls);
  check_int "stmt count" 1 (List.length p.body);
  Alcotest.(check string) "name" "tiny" p.name

let test_parser_precedence () =
  (* 1 + 2 * 3 == 7 must hold under correct precedence. *)
  let outputs =
    run_program
      {|program prec;
party a;
input dummy : bool of a;
output r : bool;
main { r = 1 + 2 * 3 == 7; }
|}
      [ ("dummy", Compile.Dbool false) ]
  in
  check_bool "precedence" true (get_bool outputs "r")

let test_parser_ternary_nested () =
  let outputs =
    run_program
      {|program tern;
party a;
input x : uint<4> of a;
output r : uint<4>;
main { r = x > 5 ? x > 10 ? 3 : 2 : 1; }
|}
      [ ("x", Compile.Dint 7) ]
  in
  check_int "nested ternary" 2 (get_int outputs "r")

let test_parser_error_position () =
  (try
     ignore (Parser.parse "program bad; main { x = ; }");
     Alcotest.fail "expected a parse error"
   with Parser.Error (_, pos) -> check_int "error line" 1 pos.Ast.line)

(* ---------- typechecker ---------- *)

let expect_type_error src fragment =
  let p = Parser.parse src in
  match Typecheck.check_result p with
  | Ok () -> Alcotest.fail ("expected type error mentioning: " ^ fragment)
  | Error e ->
      let contains =
        let la = String.length fragment and ls = String.length e.message in
        let rec go i = i + la <= ls && (String.sub e.message i la = fragment || go (i + 1)) in
        go 0
      in
      check_bool (Printf.sprintf "message %S mentions %S" e.message fragment) true contains

let test_typecheck_accepts_valid () =
  let p =
    Parser.parse
      {|program ok;
const W = 4;
party a;
party b;
input x : uint<W> of a;
input ys : uint<W>[3] of b;
output total : uint<W + 2>;
var tmp : uint<W + 2>;
main {
  tmp = x;
  for i in 0 .. 2 { tmp = tmp + ys[i]; }
  if (tmp > 10) { tmp = tmp - 1; } else { tmp = tmp + 1; }
  total = tmp;
}
|}
  in
  match Typecheck.check_result p with
  | Ok () -> ()
  | Error e -> Alcotest.fail e.message

let test_typecheck_rejects_unknown_var () =
  expect_type_error "program t; party a; input x : bool of a; main { y = x; }" "unknown identifier"

let test_typecheck_rejects_assign_to_input () =
  expect_type_error "program t; party a; input x : bool of a; main { x = true; }"
    "cannot assign to input"

let test_typecheck_rejects_bool_int_mix () =
  expect_type_error
    "program t; party a; input x : bool of a; output r : uint<4>; main { r = x + 1; }"
    "must be integers"

let test_typecheck_accepts_secret_read_index () =
  let p =
    Parser.parse
      {|program t;
party a;
input i : uint<2> of a;
input xs : uint<4>[4] of a;
output r : uint<4>;
main { r = xs[i]; }
|}
  in
  match Typecheck.check_result p with
  | Ok () -> ()
  | Error e -> Alcotest.fail e.message

let test_typecheck_rejects_secret_write_index () =
  expect_type_error
    {|program t;
party a;
input i : uint<2> of a;
output ys : uint<4>[4];
main { ys[i] = 1; }
|}
    "public"

let test_typecheck_rejects_secret_loop_bound () =
  expect_type_error
    {|program t;
party a;
input x : uint<4> of a;
output r : uint<4>;
main { for i in 0 .. x { r = r + 1; } }
|}
    "public"

let test_typecheck_rejects_unknown_party () =
  expect_type_error "program t; party a; input x : bool of ghost; main { }" "unknown party"

let test_typecheck_rejects_duplicate () =
  expect_type_error "program t; party a; const a = 1; main { }" "duplicate"

let test_typecheck_rejects_nonbool_condition () =
  expect_type_error
    "program t; party a; input x : uint<4> of a; output r : uint<4>; main { if (x) { r = 1; } }"
    "must be bool"

let test_typecheck_rejects_no_parties () =
  expect_type_error "program t; const A = 1; main { }" "no parties"

let test_typecheck_rejects_whole_array_assign () =
  expect_type_error
    {|program t;
party a;
input xs : uint<4>[2] of a;
output ys : uint<4>[2];
main { ys = xs[0]; }
|}
    "array"

(* ---------- compiler semantics ---------- *)

let test_compile_arithmetic () =
  let outputs =
    run_program
      {|program arith;
party a;
party b;
input x : uint<8> of a;
input y : uint<8> of b;
output sum : uint<9>;
output diff : uint<8>;
output prod : uint<16>;
output quot : uint<8>;
output rem : uint<8>;
main {
  sum = x + y;
  diff = x - y;
  prod = x * y;
  quot = x / y;
  rem = x % y;
}
|}
      [ ("x", Compile.Dint 200); ("y", Compile.Dint 7) ]
  in
  check_int "sum" 207 (get_int outputs "sum");
  check_int "diff" 193 (get_int outputs "diff");
  check_int "prod" 1400 (get_int outputs "prod");
  check_int "quot" 28 (get_int outputs "quot");
  check_int "rem" 4 (get_int outputs "rem")

let test_compile_for_accumulation () =
  let outputs =
    run_program
      {|program loops;
const N = 5;
party a;
input xs : uint<4>[N] of a;
output total : uint<8>;
main {
  total = 0;
  for i in 0 .. N - 1 { total = total + xs[i]; }
}
|}
      [ ("xs", Compile.Dints [| 1; 2; 3; 4; 5 |]) ]
  in
  check_int "loop sum" 15 (get_int outputs "total")

let test_compile_secret_if_mux () =
  let run x =
    run_program
      {|program branch;
party a;
input x : uint<4> of a;
output r : uint<4>;
main {
  r = 0;
  if (x > 7) { r = 1; } else { r = 2; }
}
|}
      [ ("x", Compile.Dint x) ]
  in
  check_int "then branch" 1 (get_int (run 9) "r");
  check_int "else branch" 2 (get_int (run 3) "r")

let test_compile_public_if_static () =
  (* A public condition must not generate a mux: branch picked statically. *)
  let compiled =
    Compile.compile_source
      {|program pub;
const FLAG = 1;
party a;
input x : uint<4> of a;
output r : uint<4>;
main {
  if (FLAG == 1) { r = x; } else { r = x + 1; }
}
|}
  in
  let stats = Circuit.stats compiled.circuit in
  check_int "no and gates needed" 0 stats.and_gates

let test_compile_nested_if_state () =
  let run x =
    run_program
      {|program nested;
party a;
input x : uint<8> of a;
output hi : bool;
output band : uint<4>;
main {
  hi = false;
  band = 0;
  if (x > 100) {
    hi = true;
    if (x > 200) { band = 2; } else { band = 1; }
  }
}
|}
      [ ("x", Compile.Dint x) ]
  in
  let o1 = run 250 in
  check_bool "hi 250" true (get_bool o1 "hi");
  check_int "band 250" 2 (get_int o1 "band");
  let o2 = run 150 in
  check_bool "hi 150" true (get_bool o2 "hi");
  check_int "band 150" 1 (get_int o2 "band");
  let o3 = run 50 in
  check_bool "hi 50" false (get_bool o3 "hi");
  check_int "band 50" 0 (get_int o3 "band")

let test_compile_const_array_indexing () =
  let outputs =
    run_program
      {|program consts;
const T = [10, 20, 30];
party a;
input x : uint<8> of a;
output picked : uint<8>;
main {
  picked = 0;
  for i in 0 .. 2 { if (x >= T[i]) { picked = T[i]; } }
}
|}
      [ ("x", Compile.Dint 25) ]
  in
  check_int "largest threshold below" 20 (get_int outputs "picked")

let test_compile_truncating_assignment () =
  let outputs =
    run_program
      {|program trunc;
party a;
input x : uint<8> of a;
output low : uint<4>;
main { low = x + 0; }
|}
      [ ("x", Compile.Dint 0xAB) ]
  in
  check_int "low nibble kept" 0xB (get_int outputs "low")

let test_compile_bool_ops () =
  let outputs =
    run_program
      {|program bools;
party a;
input x : bool of a;
input y : bool of a;
output andv : bool;
output orv : bool;
output xorv : bool;
output notv : bool;
output eqv : bool;
main {
  andv = x && y;
  orv = x || y;
  xorv = x ^ y;
  notv = !x;
  eqv = x == y;
}
|}
      [ ("x", Compile.Dbool true); ("y", Compile.Dbool false) ]
  in
  check_bool "and" false (get_bool outputs "andv");
  check_bool "or" true (get_bool outputs "orv");
  check_bool "xor" true (get_bool outputs "xorv");
  check_bool "not" false (get_bool outputs "notv");
  check_bool "eq" false (get_bool outputs "eqv")

let test_compile_out_of_bounds_index () =
  match
    Compile.compile_source
      {|program oob;
const N = 3;
party a;
input xs : uint<4>[N] of a;
output r : uint<4>;
main { for i in 0 .. N { r = xs[i]; } }
|}
  with
  | _ -> Alcotest.fail "expected an out-of-bounds error"
  | exception Compile.Error (msg, _) ->
      Alcotest.(check string) "message" "index 3 out of bounds for xs (length 3)" msg

let test_encode_validation () =
  let compiled = Compile.compile_source (Programs.millionaires ~width:4) in
  Alcotest.check_raises "missing input"
    (Invalid_argument "encode_inputs: missing value for input b") (fun () ->
      ignore (Compile.encode_inputs compiled [ ("a", Compile.Dint 3) ]));
  Alcotest.check_raises "overflow rejected"
    (Invalid_argument "encode_inputs: a=99 does not fit in 4 bits") (fun () ->
      ignore (Compile.encode_inputs compiled [ ("a", Compile.Dint 99); ("b", Compile.Dint 1) ]))

(* ---------- canned programs ---------- *)

let test_millionaires_program () =
  let src = Programs.millionaires ~width:16 in
  List.iter
    (fun (a, b) ->
      let outputs = run_program src [ ("a", Compile.Dint a); ("b", Compile.Dint b) ] in
      check_bool (Printf.sprintf "%d > %d" a b) (a > b) (get_bool outputs "alice_richer"))
    [ (100, 50); (50, 100); (77, 77); (0, 65535) ]

let test_sum3_program () =
  let outputs =
    run_program (Programs.sum3 ~width:8)
      [ ("x0", Compile.Dint 100); ("x1", Compile.Dint 200); ("x2", Compile.Dint 255) ]
  in
  check_int "three-party sum" 555 (get_int outputs "total")

let test_vickrey_program () =
  let src = Programs.vickrey_auction ~width:8 ~bidders:4 in
  let outputs =
    run_program src
      [
        ("bid0", Compile.Dint 10);
        ("bid1", Compile.Dint 99);
        ("bid2", Compile.Dint 40);
        ("bid3", Compile.Dint 70);
      ]
  in
  check_int "winner" 1 (get_int outputs "winner");
  check_int "second price" 70 (get_int outputs "price")

let test_count_below_program () =
  (* Full semantic check against a plaintext reference on random shares. *)
  let open Eppi_prelude in
  let q = 37 in
  let c = 3 in
  let rng = Rng.create 77 in
  let freqs = [| 0; 5; 36; 18; 18 |] in
  let thresholds = [| 1; 6; 30; 18; 19 |] in
  let qm = Modarith.modulus q in
  let shares = Array.map (fun v -> Eppi_secretshare.Additive.share rng ~q:qm ~c v) freqs in
  let svec k = Array.map (fun sh -> sh.(k)) shares in
  let outputs =
    run_program
      (Programs.count_below ~c ~q ~thresholds)
      (List.init c (fun k -> (Printf.sprintf "s%d" k, Compile.Dints (svec k))))
  in
  (match Compile.lookup_output outputs "common" with
  | Compile.Dbools commons ->
      Array.iteri
        (fun j expected ->
          check_bool (Printf.sprintf "common[%d]" j) expected commons.(j))
        (Array.mapi (fun j f -> f >= thresholds.(j)) freqs)
  | _ -> Alcotest.fail "bad common shape");
  let expected_count =
    Array.to_list (Array.mapi (fun j f -> f >= thresholds.(j)) freqs)
    |> List.filter Fun.id |> List.length
  in
  check_int "count" expected_count (get_int outputs "count");
  let freq_out = get_ints outputs "freq" in
  Array.iteri
    (fun j f ->
      if f >= thresholds.(j) then check_int (Printf.sprintf "freq[%d] masked" j) 0 freq_out.(j)
      else check_int (Printf.sprintf "freq[%d] revealed" j) f freq_out.(j))
    freqs

let test_count_below_validation () =
  Alcotest.check_raises "c too small"
    (Invalid_argument "Programs.count_below: need at least 2 coordinators") (fun () ->
      ignore (Programs.count_below ~c:1 ~q:11 ~thresholds:[| 1 |]));
  Alcotest.check_raises "threshold out of range"
    (Invalid_argument "Programs.count_below: threshold out of [0, q)") (fun () ->
      ignore (Programs.count_below ~c:3 ~q:11 ~thresholds:[| 11 |]))

(* ---------- differential testing: interpreter vs compiled circuit ---------- *)

let run_interp src values = Interp.run_source src ~inputs:values

let diff_check src values =
  (* Both paths must agree: same outputs, or the same rejection (e.g. a
     negative public constant flowing into the circuit). *)
  let attempt f = try Ok (f ()) with Compile.Error (m, _) | Interp.Error (m, _) -> Error m in
  match (attempt (fun () -> run_program src values), attempt (fun () -> run_interp src values)) with
  | Ok compiled_out, Ok interp_out ->
      Alcotest.(check int) "same output count" (List.length compiled_out)
        (List.length interp_out);
      List.iter2
        (fun (n1, d1) (n2, d2) ->
          Alcotest.(check string) "output name" n1 n2;
          check_bool (Printf.sprintf "output %s agrees" n1) true (d1 = d2))
        compiled_out interp_out
  | Error m1, Error m2 -> Alcotest.(check string) "same rejection" m1 m2
  | Ok _, Error m -> Alcotest.fail ("interpreter rejected what the compiler accepted: " ^ m)
  | Error m, Ok _ -> Alcotest.fail ("compiler rejected what the interpreter accepted: " ^ m)

let test_interp_matches_compile_canned () =
  diff_check (Programs.millionaires ~width:8)
    [ ("a", Compile.Dint 200); ("b", Compile.Dint 13) ];
  diff_check (Programs.sum3 ~width:8)
    [ ("x0", Compile.Dint 255); ("x1", Compile.Dint 255); ("x2", Compile.Dint 255) ];
  diff_check
    (Programs.vickrey_auction ~width:8 ~bidders:3)
    [ ("bid0", Compile.Dint 17); ("bid1", Compile.Dint 90); ("bid2", Compile.Dint 44) ];
  diff_check
    (Programs.count_below ~c:3 ~q:11 ~thresholds:[| 5; 2 |])
    [
      ("s0", Compile.Dints [| 3; 10 |]);
      ("s1", Compile.Dints [| 4; 0 |]);
      ("s2", Compile.Dints [| 9; 2 |]);
    ]

let test_interp_edge_semantics () =
  (* Division/modulo by a secret zero: the hardware convention, on both
     paths. *)
  let src =
    {|program divzero;
party p;
input x : uint<4> of p;
input y : uint<4> of p;
output q : uint<4>;
output r : uint<4>;
main { q = x / y; r = x % y; }
|}
  in
  diff_check src [ ("x", Compile.Dint 11); ("y", Compile.Dint 0) ];
  (* Subtraction underflow wraps at the common width on both paths. *)
  let src2 =
    {|program wrap;
party p;
input x : uint<4> of p;
input y : uint<4> of p;
output d : uint<4>;
main { d = x - y; }
|}
  in
  diff_check src2 [ ("x", Compile.Dint 3); ("y", Compile.Dint 12) ]

let test_secret_index_semantics () =
  let src =
    {|program secidx;
party p;
input i : uint<4> of p;
input xs : uint<6>[5] of p;
const T = [10, 20, 30];
output r : uint<6>;
output c : uint<6>;
main {
  r = xs[i];
  c = T[i];
}
|}
  in
  (* In range: the selected cell; out of range: zero. *)
  List.iter
    (fun i ->
      let values = [ ("i", Compile.Dint i); ("xs", Compile.Dints [| 9; 8; 7; 6; 5 |]) ] in
      diff_check src values;
      let out = run_program src values in
      let expected_r = if i < 5 then [| 9; 8; 7; 6; 5 |].(i) else 0 in
      let expected_c = if i < 3 then [| 10; 20; 30 |].(i) else 0 in
      check_int (Printf.sprintf "xs[%d]" i) expected_r (get_int out "r");
      check_int (Printf.sprintf "T[%d]" i) expected_c (get_int out "c"))
    [ 0; 2; 4; 5; 9; 15 ]

(* Random well-typed program generator.  Produces source text from a seeded
   Rng; the scaffold (inputs/outputs/vars) is fixed, the body is random. *)
let random_program rng =
  let open Eppi_prelude in
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "program fuzzed;";
  line "const C = 6;";
  line "const T = [2, 5, 9];";
  line "party p0;";
  line "party p1;";
  line "input a : uint<5> of p0;";
  line "input b : uint<5> of p1;";
  line "input xs : uint<4>[3] of p0;";
  line "input f : bool of p0;";
  line "input g : bool of p1;";
  line "output r1 : uint<8>;";
  line "output r2 : uint<6>;";
  line "output ob : bool;";
  line "var t : uint<10>;";
  line "var ys : uint<4>[3];";
  let fresh_loop =
    let counter = ref 0 in
    fun () ->
      incr counter;
      Printf.sprintf "i%d" !counter
  in
  let rec uexpr depth loops =
    if depth = 0 || Rng.int rng 3 = 0 then
      match Rng.int rng (if loops = [] then 7 else 8) with
      | 0 -> string_of_int (Rng.int rng 31)
      | 1 -> "a"
      | 2 -> "b"
      | 3 -> "t"
      | 4 -> (
          (* Mix public, in-range secret and possibly-out-of-range secret
             indexes. *)
          match Rng.int rng 4 with
          | 0 -> Printf.sprintf "xs[%d]" (Rng.int rng 3)
          | 1 -> "xs[(a % 3)]"
          | 2 -> "xs[(b % 4)]"
          | _ -> "T[(a % 5)]")
      | 5 -> "C"
      | 6 -> Printf.sprintf "T[%d]" (Rng.int rng 3)
      | _ -> List.nth loops (Rng.int rng (List.length loops))
    else
      match Rng.int rng 9 with
      | 0 -> Printf.sprintf "(%s + %s)" (uexpr (depth - 1) loops) (uexpr (depth - 1) loops)
      | 1 -> Printf.sprintf "(%s - %s)" (uexpr (depth - 1) loops) (uexpr (depth - 1) loops)
      | 2 -> Printf.sprintf "(%s * %s)" (uexpr (depth - 1) loops) (uexpr (depth - 1) loops)
      | 3 ->
          (* Keep one operand secret so public division by zero (a compile
             error on both paths) cannot arise. *)
          Printf.sprintf "(%s / (a + %s))" (uexpr (depth - 1) loops) (uexpr (depth - 1) loops)
      | 4 -> Printf.sprintf "(%s %% (b + %s))" (uexpr (depth - 1) loops) (uexpr (depth - 1) loops)
      | 5 -> Printf.sprintf "(%s & %s)" (uexpr (depth - 1) loops) (uexpr (depth - 1) loops)
      | 6 -> Printf.sprintf "(%s | %s)" (uexpr (depth - 1) loops) (uexpr (depth - 1) loops)
      | 7 -> Printf.sprintf "(%s ^ %s)" (uexpr (depth - 1) loops) (uexpr (depth - 1) loops)
      | _ ->
          Printf.sprintf "(%s ? %s : %s)" (bexpr (depth - 1) loops) (uexpr (depth - 1) loops)
            (uexpr (depth - 1) loops)
  and bexpr depth loops =
    if depth = 0 || Rng.int rng 3 = 0 then
      match Rng.int rng 3 with 0 -> "f" | 1 -> "g" | _ -> "true"
    else
      match Rng.int rng 7 with
      | 0 -> Printf.sprintf "(%s < %s)" (uexpr (depth - 1) loops) (uexpr (depth - 1) loops)
      | 1 -> Printf.sprintf "(%s >= %s)" (uexpr (depth - 1) loops) (uexpr (depth - 1) loops)
      | 2 -> Printf.sprintf "(%s == %s)" (uexpr (depth - 1) loops) (uexpr (depth - 1) loops)
      | 3 -> Printf.sprintf "(%s && %s)" (bexpr (depth - 1) loops) (bexpr (depth - 1) loops)
      | 4 -> Printf.sprintf "(%s || %s)" (bexpr (depth - 1) loops) (bexpr (depth - 1) loops)
      | 5 -> Printf.sprintf "(!%s)" (bexpr (depth - 1) loops)
      | _ -> Printf.sprintf "(%s != %s)" (uexpr (depth - 1) loops) (uexpr (depth - 1) loops)
  in
  let rec stmt indent depth loops =
    let pad = String.make indent ' ' in
    match Rng.int rng (if depth = 0 then 5 else 7) with
    | 0 -> line "%st = %s;" pad (uexpr 2 loops)
    | 1 -> line "%sr1 = %s;" pad (uexpr 2 loops)
    | 2 -> line "%sr2 = %s;" pad (uexpr 2 loops)
    | 3 -> line "%sob = %s;" pad (bexpr 2 loops)
    | 4 -> line "%sys[%d] = %s;" pad (Rng.int rng 3) (uexpr 2 loops)
    | 5 ->
        line "%sif (%s) {" pad (bexpr 2 loops);
        block (indent + 2) (depth - 1) loops;
        if Rng.bool rng then begin
          line "%s} else {" pad;
          block (indent + 2) (depth - 1) loops
        end;
        line "%s}" pad
    | _ ->
        let v = fresh_loop () in
        line "%sfor %s in 0 .. 2 {" pad v;
        block (indent + 2) (depth - 1) (v :: loops);
        line "%s}" pad
  and block indent depth loops =
    for _ = 1 to 1 + Rng.int rng 3 do
      stmt indent depth loops
    done
  in
  line "main {";
  block 2 2 [];
  line "}";
  Buffer.contents buf

let test_fuzz_interp_vs_compile () =
  let open Eppi_prelude in
  for seed = 1 to 150 do
    let rng = Rng.create seed in
    let src = random_program rng in
    let values =
      [
        ("a", Compile.Dint (Rng.int rng 32));
        ("b", Compile.Dint (Rng.int rng 32));
        ("xs", Compile.Dints (Array.init 3 (fun _ -> Rng.int rng 16)));
        ("f", Compile.Dbool (Rng.bool rng));
        ("g", Compile.Dbool (Rng.bool rng));
      ]
    in
    try diff_check src values
    with exn ->
      let show (n, d) =
        match d with
        | Compile.Dint v -> Printf.sprintf "%s=%d" n v
        | Compile.Dbool v -> Printf.sprintf "%s=%b" n v
        | Compile.Dints vs ->
            Printf.sprintf "%s=[%s]" n
              (String.concat ";" (Array.to_list (Array.map string_of_int vs)))
        | Compile.Dbools vs ->
            Printf.sprintf "%s=[%s]" n
              (String.concat ";" (Array.to_list (Array.map string_of_bool vs)))
      in
      Printf.eprintf "--- seed %d inputs: %s ---\n%s\n" seed
        (String.concat " " (List.map show values))
        src;
      raise exn
  done

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"millionaires agrees with >" ~count:200
      (pair (int_range 0 255) (int_range 0 255))
      (fun (a, b) ->
        let outputs =
          run_program (Programs.millionaires ~width:8)
            [ ("a", Compile.Dint a); ("b", Compile.Dint b) ]
        in
        get_bool outputs "alice_richer" = (a > b));
    Test.make ~name:"sum3 agrees with +" ~count:200
      (triple (int_range 0 255) (int_range 0 255) (int_range 0 255))
      (fun (x, y, z) ->
        let outputs =
          run_program (Programs.sum3 ~width:8)
            [ ("x0", Compile.Dint x); ("x1", Compile.Dint y); ("x2", Compile.Dint z) ]
        in
        get_int outputs "total" = x + y + z);
  ]

let () =
  Alcotest.run "sfdl"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "two-char punctuation" `Quick test_lexer_two_char_punct;
          Alcotest.test_case "positions" `Quick test_lexer_positions;
          Alcotest.test_case "bad char" `Quick test_lexer_bad_char;
        ] );
      ( "parser",
        [
          Alcotest.test_case "minimal program" `Quick test_parser_minimal;
          Alcotest.test_case "precedence" `Quick test_parser_precedence;
          Alcotest.test_case "nested ternary" `Quick test_parser_ternary_nested;
          Alcotest.test_case "error position" `Quick test_parser_error_position;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "accepts valid" `Quick test_typecheck_accepts_valid;
          Alcotest.test_case "unknown variable" `Quick test_typecheck_rejects_unknown_var;
          Alcotest.test_case "assign to input" `Quick test_typecheck_rejects_assign_to_input;
          Alcotest.test_case "bool/int mix" `Quick test_typecheck_rejects_bool_int_mix;
          Alcotest.test_case "secret read index accepted" `Quick
            test_typecheck_accepts_secret_read_index;
          Alcotest.test_case "secret write index rejected" `Quick
            test_typecheck_rejects_secret_write_index;
          Alcotest.test_case "secret loop bound" `Quick test_typecheck_rejects_secret_loop_bound;
          Alcotest.test_case "unknown party" `Quick test_typecheck_rejects_unknown_party;
          Alcotest.test_case "duplicate declaration" `Quick test_typecheck_rejects_duplicate;
          Alcotest.test_case "non-bool condition" `Quick test_typecheck_rejects_nonbool_condition;
          Alcotest.test_case "no parties" `Quick test_typecheck_rejects_no_parties;
          Alcotest.test_case "whole-array assign" `Quick test_typecheck_rejects_whole_array_assign;
        ] );
      ( "compile",
        [
          Alcotest.test_case "arithmetic" `Quick test_compile_arithmetic;
          Alcotest.test_case "for accumulation" `Quick test_compile_for_accumulation;
          Alcotest.test_case "secret if muxes" `Quick test_compile_secret_if_mux;
          Alcotest.test_case "public if is static" `Quick test_compile_public_if_static;
          Alcotest.test_case "nested if state" `Quick test_compile_nested_if_state;
          Alcotest.test_case "const array indexing" `Quick test_compile_const_array_indexing;
          Alcotest.test_case "truncating assignment" `Quick test_compile_truncating_assignment;
          Alcotest.test_case "bool operations" `Quick test_compile_bool_ops;
          Alcotest.test_case "out-of-bounds index" `Quick test_compile_out_of_bounds_index;
          Alcotest.test_case "encode validation" `Quick test_encode_validation;
        ] );
      ( "differential",
        [
          Alcotest.test_case "interpreter matches compiler (canned)" `Quick
            test_interp_matches_compile_canned;
          Alcotest.test_case "edge semantics" `Quick test_interp_edge_semantics;
          Alcotest.test_case "secret index semantics" `Quick test_secret_index_semantics;
          Alcotest.test_case "fuzz: 150 random programs" `Quick test_fuzz_interp_vs_compile;
        ] );
      ( "programs",
        [
          Alcotest.test_case "millionaires" `Quick test_millionaires_program;
          Alcotest.test_case "sum3" `Quick test_sum3_program;
          Alcotest.test_case "vickrey auction" `Quick test_vickrey_program;
          Alcotest.test_case "count_below" `Quick test_count_below_program;
          Alcotest.test_case "count_below validation" `Quick test_count_below_validation;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
