(* Tests for the Boolean circuit IR, the word-level gadget library and the
   fixed-point layer: every gadget is checked against plain integer
   arithmetic, including property tests over random operands. *)

open Eppi_circuit
module B = Circuit.Builder

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Evaluate a single-party circuit built by [f], feeding integer inputs. *)
let eval_unop ~width f x =
  let b = B.create () in
  let wx = Word.input_word b ~party:0 ~width in
  f b wx;
  let c = B.finish b in
  let bits = Array.init width (fun i -> (x lsr i) land 1 = 1) in
  Circuit.eval c ~inputs:[| bits |]

let eval_binop ~width f x y =
  let b = B.create () in
  let wx = Word.input_word b ~party:0 ~width in
  let wy = Word.input_word b ~party:1 ~width in
  f b wx wy;
  let c = B.finish b in
  let bits v = Array.init width (fun i -> (v lsr i) land 1 = 1) in
  Circuit.eval c ~inputs:[| bits x; bits y |]

(* ---------- builder / IR ---------- *)

let test_builder_const_folding () =
  let b = B.create () in
  let t = B.const b true and f = B.const b false in
  check_int "xor of consts folds" (B.const b true) (B.xor_ b t f);
  check_int "and with false folds" f (B.and_ b t f);
  let x = B.input b ~party:0 in
  check_int "x xor x folds to false" f (B.xor_ b x x);
  check_int "x and x is x" x (B.and_ b x x);
  check_int "x and true is x" x (B.and_ b x t);
  check_int "x xor false is x" x (B.xor_ b x f);
  let nx = B.not_ b x in
  check_int "double negation cancels" x (B.not_ b nx)

let test_builder_output_validation () =
  let b = B.create () in
  Alcotest.check_raises "unknown wire" (Invalid_argument "Builder.output: unknown wire")
    (fun () -> B.output b 99)

let test_stats_counts () =
  let b = B.create () in
  let x = B.input b ~party:0 and y = B.input b ~party:0 in
  let a = B.and_ b x y in
  let o = B.xor_ b a (B.not_ b x) in
  B.output b o;
  let c = B.finish b in
  let s = Circuit.stats c in
  check_int "inputs" 2 s.inputs;
  check_int "and gates" 1 s.and_gates;
  check_int "xor gates" 1 s.xor_gates;
  check_int "not gates" 1 s.not_gates;
  check_int "size" 3 s.size;
  check_int "and depth" 1 s.and_depth

let test_and_layers () =
  let b = B.create () in
  let x = B.input b ~party:0 and y = B.input b ~party:0 and z = B.input b ~party:0 in
  let a1 = B.and_ b x y in
  let a2 = B.and_ b a1 z in
  B.output b a2;
  let c = B.finish b in
  let layers = Circuit.and_layers c in
  check_int "two layers" 2 (Array.length layers);
  check_int "layer 0 size" 1 (Array.length layers.(0));
  check_int "layer 1 size" 1 (Array.length layers.(1))

let test_eval_basic_gates () =
  let cases = [ (false, false); (false, true); (true, false); (true, true) ] in
  List.iter
    (fun (x, y) ->
      let b = B.create () in
      let wx = B.input b ~party:0 and wy = B.input b ~party:0 in
      B.output b (B.and_ b wx wy);
      B.output b (B.xor_ b wx wy);
      B.output b (B.or_ b wx wy);
      B.output b (B.not_ b wx);
      let c = B.finish b in
      let out = Circuit.eval c ~inputs:[| [| x; y |] |] in
      check_bool "and" (x && y) out.(0);
      check_bool "xor" (x <> y) out.(1);
      check_bool "or" (x || y) out.(2);
      check_bool "not" (not x) out.(3))
    cases

let test_eval_missing_input () =
  let b = B.create () in
  let x = B.input b ~party:0 in
  B.output b x;
  let c = B.finish b in
  Alcotest.check_raises "missing input" (Invalid_argument "Circuit.eval: missing input bit")
    (fun () -> ignore (Circuit.eval c ~inputs:[| [||] |]))

let test_input_widths () =
  let b = B.create () in
  let _ = Word.input_word b ~party:0 ~width:4 in
  let _ = Word.input_word b ~party:2 ~width:2 in
  let c = B.finish b in
  check_int "parties" 3 (Circuit.num_parties c);
  check_int "party 0 width" 4 (Circuit.input_width c 0);
  check_int "party 1 width" 0 (Circuit.input_width c 1);
  check_int "party 2 width" 2 (Circuit.input_width c 2)

(* ---------- word gadgets ---------- *)

let test_word_const_roundtrip () =
  List.iter
    (fun v ->
      let b = B.create () in
      Word.output_word b (Word.const_int b ~width:10 v);
      let out = Circuit.eval (B.finish b) ~inputs:[||] in
      check_int (Printf.sprintf "const %d" v) v (Word.to_int out))
    [ 0; 1; 5; 511; 1023 ]

let test_word_add () =
  List.iter
    (fun (x, y) ->
      let out = eval_binop ~width:8 (fun b wx wy -> Word.output_word b (Word.add b wx wy)) x y in
      check_int (Printf.sprintf "%d + %d" x y) (x + y) (Word.to_int out))
    [ (0, 0); (1, 1); (255, 255); (200, 57); (128, 128) ]

let test_word_add_mod () =
  let out =
    eval_binop ~width:8 (fun b wx wy -> Word.output_word b (Word.add_mod b ~width:8 wx wy)) 200 100
  in
  check_int "wraps mod 256" ((200 + 100) mod 256) (Word.to_int out)

let test_word_sub () =
  List.iter
    (fun (x, y) ->
      let out = eval_binop ~width:8 (fun b wx wy -> Word.output_word b (Word.sub b wx wy)) x y in
      check_int (Printf.sprintf "%d - %d" x y) (x - y) (Word.to_int out))
    [ (10, 3); (255, 0); (100, 100); (255, 254) ]

let test_word_mul () =
  List.iter
    (fun (x, y) ->
      let out = eval_binop ~width:8 (fun b wx wy -> Word.output_word b (Word.mul b wx wy)) x y in
      check_int (Printf.sprintf "%d * %d" x y) (x * y) (Word.to_int out))
    [ (0, 7); (1, 255); (15, 17); (255, 255); (13, 11) ]

let test_word_divmod () =
  List.iter
    (fun (x, y) ->
      let out =
        eval_binop ~width:8
          (fun b wx wy ->
            let q, r = Word.divmod b wx wy in
            Word.output_word b q;
            Word.output_word b r)
          x y
      in
      let q = Word.to_int (Array.sub out 0 8) in
      let r = Word.to_int (Array.sub out 8 8) in
      check_int (Printf.sprintf "%d / %d" x y) (x / y) q;
      check_int (Printf.sprintf "%d mod %d" x y) (x mod y) r)
    [ (100, 7); (255, 1); (255, 255); (5, 9); (144, 12) ]

let test_word_divmod_by_zero () =
  (* Hardware convention: quotient saturates, remainder = dividend. *)
  let out =
    eval_binop ~width:4
      (fun b wx wy ->
        let q, r = Word.divmod b wx wy in
        Word.output_word b q;
        Word.output_word b r)
      11 0
  in
  check_int "quotient all ones" 15 (Word.to_int (Array.sub out 0 4));
  check_int "remainder = dividend" 11 (Word.to_int (Array.sub out 4 4))

let test_word_sqrt () =
  for x = 0 to 255 do
    let out = eval_unop ~width:8 (fun b wx -> Word.output_word b (Word.sqrt b wx)) x in
    check_int (Printf.sprintf "isqrt %d" x) (int_of_float (sqrt (float_of_int x))) (Word.to_int out)
  done

let test_word_comparisons () =
  List.iter
    (fun (x, y) ->
      let out =
        eval_binop ~width:8
          (fun b wx wy ->
            B.output b (Word.lt b wx wy);
            B.output b (Word.ge b wx wy);
            B.output b (Word.equal b wx wy))
          x y
      in
      check_bool (Printf.sprintf "%d < %d" x y) (x < y) out.(0);
      check_bool (Printf.sprintf "%d >= %d" x y) (x >= y) out.(1);
      check_bool (Printf.sprintf "%d = %d" x y) (x = y) out.(2))
    [ (0, 0); (3, 7); (7, 3); (255, 255); (255, 0); (0, 255); (128, 127) ]

let test_word_mux () =
  List.iter
    (fun sel ->
      let b = B.create () in
      let s = B.input b ~party:0 in
      let x = Word.const_int b ~width:6 42 in
      let y = Word.const_int b ~width:6 17 in
      Word.output_word b (Word.mux b s x y);
      let out = Circuit.eval (B.finish b) ~inputs:[| [| sel |] |] in
      check_int "mux" (if sel then 42 else 17) (Word.to_int out))
    [ true; false ]

let test_word_popcount () =
  List.iter
    (fun v ->
      let b = B.create () in
      let bits = Array.init 9 (fun _ -> B.input b ~party:0) in
      Word.output_word b (Word.popcount b bits);
      let input = Array.init 9 (fun i -> (v lsr i) land 1 = 1) in
      let out = Circuit.eval (B.finish b) ~inputs:[| input |] in
      let expected = Array.fold_left (fun acc bit -> if bit then acc + 1 else acc) 0 input in
      check_int (Printf.sprintf "popcount %d" v) expected (Word.to_int out))
    [ 0; 1; 0b101010101; 0b111111111; 0b100000000 ]

let test_word_sum_empty () =
  let b = B.create () in
  Word.output_word b (Word.sum b []);
  let out = Circuit.eval (B.finish b) ~inputs:[||] in
  check_int "empty sum" 0 (Word.to_int out)

let test_word_sum_many () =
  let values = [ 3; 9; 27; 1; 255; 16 ] in
  let b = B.create () in
  let words = List.map (fun v -> Word.const_int b ~width:8 v) values in
  Word.output_word b (Word.sum b words);
  let out = Circuit.eval (B.finish b) ~inputs:[||] in
  check_int "sum" (List.fold_left ( + ) 0 values) (Word.to_int out)

let test_word_reduce_mod () =
  (* Sum of 3 residues mod 11: up to 30, two conditional subtracts. *)
  List.iter
    (fun v ->
      let b = B.create () in
      let w = Word.const_int b ~width:5 v in
      Word.output_word b (Word.reduce_mod b w ~modulus:11 ~steps:2);
      let out = Circuit.eval (B.finish b) ~inputs:[||] in
      check_int (Printf.sprintf "%d mod 11" v) (v mod 11) (Word.to_int out))
    [ 0; 10; 11; 21; 22; 30 ]

let test_bits_for () =
  check_int "0" 1 (Word.bits_for 0);
  check_int "1" 1 (Word.bits_for 1);
  check_int "2" 2 (Word.bits_for 2);
  check_int "255" 8 (Word.bits_for 255);
  check_int "256" 9 (Word.bits_for 256)

(* ---------- fixed point ---------- *)

let fp_eval f =
  let b = B.create () in
  f b;
  Circuit.eval (B.finish b) ~inputs:[||]

let check_fp_close name expected bits ~frac_bits ~tol =
  let got = Fixedpoint.to_float bits ~frac_bits in
  check_bool (Printf.sprintf "%s: |%f - %f| < %f" name got expected tol) true
    (Float.abs (got -. expected) < tol)

let test_fp_constant_roundtrip () =
  List.iter
    (fun v ->
      let out =
        fp_eval (fun b -> Fixedpoint.output b (Fixedpoint.constant b ~width:24 ~frac_bits:12 v))
      in
      check_fp_close (Printf.sprintf "const %f" v) v out ~frac_bits:12 ~tol:0.001)
    [ 0.0; 1.0; 0.5; 3.14159; 100.25 ]

let test_fp_add_sub_mul_div () =
  let out =
    fp_eval (fun b ->
        let x = Fixedpoint.constant b ~width:24 ~frac_bits:12 2.5 in
        let y = Fixedpoint.constant b ~width:24 ~frac_bits:12 0.75 in
        Fixedpoint.output b (Fixedpoint.add b x y);
        Fixedpoint.output b (Fixedpoint.sub b x y);
        Fixedpoint.output b (Fixedpoint.mul b x y ~width:24);
        Fixedpoint.output b (Fixedpoint.div b x y ~width:24))
  in
  check_fp_close "add" 3.25 (Array.sub out 0 25) ~frac_bits:12 ~tol:0.001;
  check_fp_close "sub" 1.75 (Array.sub out 25 24) ~frac_bits:12 ~tol:0.001;
  check_fp_close "mul" 1.875 (Array.sub out 49 24) ~frac_bits:12 ~tol:0.002;
  check_fp_close "div" (2.5 /. 0.75) (Array.sub out 73 24) ~frac_bits:12 ~tol:0.002

let test_fp_sqrt () =
  List.iter
    (fun v ->
      let out =
        fp_eval (fun b ->
            Fixedpoint.output b
              (Fixedpoint.sqrt b (Fixedpoint.constant b ~width:24 ~frac_bits:12 v)))
      in
      check_fp_close (Printf.sprintf "sqrt %f" v) (sqrt v) out ~frac_bits:12 ~tol:0.02)
    [ 0.0; 1.0; 2.0; 0.25; 9.0; 100.0 ]

let test_fp_double_ge () =
  let out =
    fp_eval (fun b ->
        let x = Fixedpoint.constant b ~width:24 ~frac_bits:12 1.5 in
        let y = Fixedpoint.constant b ~width:24 ~frac_bits:12 2.9 in
        Fixedpoint.output b (Fixedpoint.double b x);
        B.output b (Fixedpoint.ge b (Fixedpoint.double b x) y);
        B.output b (Fixedpoint.ge b y (Fixedpoint.double b x)))
  in
  check_fp_close "double" 3.0 (Array.sub out 0 25) ~frac_bits:12 ~tol:0.001;
  check_bool "3.0 >= 2.9" true out.(25);
  check_bool "2.9 >= 3.0 is false" false out.(26)

let test_fp_of_int_word () =
  let out =
    fp_eval (fun b ->
        let w = Word.const_int b ~width:6 42 in
        Fixedpoint.output b (Fixedpoint.of_int_word b w ~frac_bits:8))
  in
  check_fp_close "int promotion" 42.0 out ~frac_bits:8 ~tol:0.0001

(* ---------- properties ---------- *)

let qcheck_tests =
  let open QCheck in
  let op2 name f reference =
    Test.make ~name ~count:300
      (pair (int_range 0 255) (int_range 0 255))
      (fun (x, y) ->
        let out = eval_binop ~width:8 (fun b wx wy -> Word.output_word b (f b wx wy)) x y in
        Word.to_int out = reference x y)
  in
  [
    op2 "add matches integers" (fun b x y -> Word.add b x y) ( + );
    op2 "mul matches integers" (fun b x y -> Word.mul b x y) ( * );
    op2 "sub inverts add"
      (fun b x y -> Word.sub b (Word.add b x y) y)
      (fun x _y -> x);
    Test.make ~name:"divmod matches integers" ~count:300
      (pair (int_range 0 255) (int_range 1 255))
      (fun (x, y) ->
        let out =
          eval_binop ~width:8
            (fun b wx wy ->
              let q, r = Word.divmod b wx wy in
              Word.output_word b q;
              Word.output_word b r)
            x y
        in
        Word.to_int (Array.sub out 0 8) = x / y && Word.to_int (Array.sub out 8 8) = x mod y);
    Test.make ~name:"comparisons match integers" ~count:300
      (pair (int_range 0 1023) (int_range 0 1023))
      (fun (x, y) ->
        let out =
          eval_binop ~width:10
            (fun b wx wy ->
              B.output b (Word.lt b wx wy);
              B.output b (Word.equal b wx wy))
            x y
        in
        out.(0) = (x < y) && out.(1) = (x = y));
    Test.make ~name:"fixedpoint arithmetic tracks floats" ~count:150
      (pair (float_range 0.1 30.0) (float_range 0.1 30.0))
      (fun (x, y) ->
        let b = B.create () in
        let fx = Fixedpoint.constant b ~width:24 ~frac_bits:12 x in
        let fy = Fixedpoint.constant b ~width:24 ~frac_bits:12 y in
        Fixedpoint.output b (Fixedpoint.add b fx fy);
        Fixedpoint.output b (Fixedpoint.mul b fx fy ~width:24);
        Fixedpoint.output b (Fixedpoint.div b fx fy ~width:24);
        let out = Circuit.eval (B.finish b) ~inputs:[||] in
        let sum = Fixedpoint.to_float (Array.sub out 0 25) ~frac_bits:12 in
        let prod = Fixedpoint.to_float (Array.sub out 25 24) ~frac_bits:12 in
        let quot = Fixedpoint.to_float (Array.sub out 49 24) ~frac_bits:12 in
        (* mul/div saturate above the Q12.12 range; only check in-range results. *)
        Float.abs (sum -. (x +. y)) < 0.01
        && (x *. y >= 4095.0 || Float.abs (prod -. (x *. y)) < 0.05)
        && (x /. y >= 4095.0 || Float.abs (quot -. (x /. y)) < 0.05));
    Test.make ~name:"isqrt matches floor sqrt" ~count:200 (int_range 0 4095)
      (fun v ->
        let b = B.create () in
        Word.output_word b (Word.sqrt b (Word.const_int b ~width:12 v));
        let out = Circuit.eval (B.finish b) ~inputs:[||] in
        Word.to_int out = int_of_float (Float.sqrt (float_of_int v)));
    Test.make ~name:"reduce_mod correct for sums of residues" ~count:300
      (pair (int_range 2 63) (int_range 0 188))
      (fun (q, v) ->
        QCheck.assume (v < 3 * q);
        let b = B.create () in
        let w = Word.const_int b ~width:8 v in
        Word.output_word b (Word.reduce_mod b w ~modulus:q ~steps:2);
        let out = Circuit.eval (B.finish b) ~inputs:[||] in
        Word.to_int out = v mod q);
  ]

let () =
  Alcotest.run "circuit"
    [
      ( "builder",
        [
          Alcotest.test_case "const folding" `Quick test_builder_const_folding;
          Alcotest.test_case "output validation" `Quick test_builder_output_validation;
          Alcotest.test_case "stats" `Quick test_stats_counts;
          Alcotest.test_case "and layers" `Quick test_and_layers;
          Alcotest.test_case "basic gates" `Quick test_eval_basic_gates;
          Alcotest.test_case "missing input" `Quick test_eval_missing_input;
          Alcotest.test_case "input widths" `Quick test_input_widths;
        ] );
      ( "word",
        [
          Alcotest.test_case "const roundtrip" `Quick test_word_const_roundtrip;
          Alcotest.test_case "add" `Quick test_word_add;
          Alcotest.test_case "add_mod" `Quick test_word_add_mod;
          Alcotest.test_case "sub" `Quick test_word_sub;
          Alcotest.test_case "mul" `Quick test_word_mul;
          Alcotest.test_case "divmod" `Quick test_word_divmod;
          Alcotest.test_case "divmod by zero" `Quick test_word_divmod_by_zero;
          Alcotest.test_case "sqrt exhaustive 8-bit" `Quick test_word_sqrt;
          Alcotest.test_case "comparisons" `Quick test_word_comparisons;
          Alcotest.test_case "mux" `Quick test_word_mux;
          Alcotest.test_case "popcount" `Quick test_word_popcount;
          Alcotest.test_case "sum empty" `Quick test_word_sum_empty;
          Alcotest.test_case "sum many" `Quick test_word_sum_many;
          Alcotest.test_case "reduce_mod" `Quick test_word_reduce_mod;
          Alcotest.test_case "bits_for" `Quick test_bits_for;
        ] );
      ( "fixedpoint",
        [
          Alcotest.test_case "constant roundtrip" `Quick test_fp_constant_roundtrip;
          Alcotest.test_case "add/sub/mul/div" `Quick test_fp_add_sub_mul_div;
          Alcotest.test_case "sqrt" `Quick test_fp_sqrt;
          Alcotest.test_case "double and ge" `Quick test_fp_double_ge;
          Alcotest.test_case "of_int_word" `Quick test_fp_of_int_word;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
