(* Tests for the synthetic information-network generator. *)

open Eppi_prelude
open Eppi_dataset

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small_dataset seed = Dataset.generate (Rng.create seed) ~providers:200 ~owners:100

let test_dimensions () =
  let d = small_dataset 1 in
  check_int "providers" 200 d.providers;
  check_int "owners" 100 d.owners;
  check_int "matrix rows" 100 (Bitmatrix.rows d.membership);
  check_int "matrix cols" 200 (Bitmatrix.cols d.membership);
  check_int "epsilons" 100 (Array.length d.epsilons)

let test_every_owner_present () =
  let d = small_dataset 2 in
  for j = 0 to d.owners - 1 do
    check_bool (Printf.sprintf "owner %d has records" j) true (Dataset.frequency d j >= 1)
  done

let test_frequency_cap () =
  let profile = { Dataset.default_profile with max_rare_frequency = 10 } in
  let d = Dataset.generate ~profile (Rng.create 3) ~providers:500 ~owners:200 in
  for j = 0 to d.owners - 1 do
    check_bool "within cap" true (Dataset.frequency d j <= 10)
  done

let test_zipf_shape () =
  (* Frequency 1 must be the modal frequency of a Zipf profile, with a
     substantial share of all owners. *)
  let d = Dataset.generate (Rng.create 4) ~providers:1000 ~owners:2000 in
  let counts = Hashtbl.create 64 in
  for j = 0 to d.owners - 1 do
    let f = Dataset.frequency d j in
    Hashtbl.replace counts f (1 + Option.value ~default:0 (Hashtbl.find_opt counts f))
  done;
  let singletons = Option.value ~default:0 (Hashtbl.find_opt counts 1) in
  check_bool "singleton share substantial" true (float_of_int singletons /. 2000.0 > 0.12);
  Hashtbl.iter
    (fun f c ->
      if f <> 1 then
        check_bool (Printf.sprintf "frequency 1 modal vs %d" f) true (c <= singletons))
    counts

let test_planted_commons () =
  let profile =
    { Dataset.default_profile with common_fraction = 0.05; common_min_sigma = 0.9 }
  in
  let d = Dataset.generate ~profile (Rng.create 5) ~providers:100 ~owners:100 in
  (* The first 5% of owners are planted common. *)
  for j = 0 to 4 do
    check_bool (Printf.sprintf "owner %d common" j) true (Dataset.sigma d j >= 0.9)
  done;
  check_bool "tail owners are rare" true (Dataset.sigma d 50 < 0.9)

let test_sigma_consistency () =
  let d = small_dataset 6 in
  for j = 0 to 20 do
    Alcotest.(check (float 1e-12))
      (Printf.sprintf "sigma %d" j)
      (float_of_int (Dataset.frequency d j) /. 200.0)
      (Dataset.sigma d j)
  done

let test_member_agrees_with_matrix () =
  let d = small_dataset 7 in
  let count = ref 0 in
  for j = 0 to d.owners - 1 do
    for p = 0 to d.providers - 1 do
      if Dataset.member d ~provider:p ~owner:j then incr count
    done
  done;
  let total = Array.init d.owners (fun j -> Dataset.frequency d j) |> Array.fold_left ( + ) 0 in
  check_int "member matches frequency totals" total !count

let test_epsilon_helpers () =
  let d = small_dataset 8 in
  let u = Dataset.uniform_epsilons (Rng.create 9) d in
  Array.iter (fun e -> check_bool "uniform in range" true (e >= 0.0 && e < 1.0)) u.epsilons;
  let c = Dataset.constant_epsilons d 0.8 in
  Array.iter (fun e -> check_bool "constant" true (e = 0.8)) c.epsilons;
  let v = Dataset.vip_epsilons (Rng.create 10) d ~vip_fraction:0.1 ~vip_epsilon:0.95 ~base_epsilon:0.3 in
  let vips = Array.fold_left (fun acc e -> if e = 0.95 then acc + 1 else acc) 0 v.epsilons in
  check_int "vip count" 10 vips;
  Alcotest.check_raises "bad epsilon" (Invalid_argument "Dataset: epsilon out of [0, 1]")
    (fun () -> ignore (Dataset.with_epsilons d (Array.make d.owners 1.5)))

let test_with_epsilons_copies () =
  let d = small_dataset 11 in
  let eps = Array.make d.owners 0.25 in
  let d2 = Dataset.with_epsilons d eps in
  eps.(0) <- 0.9;
  Alcotest.(check (float 0.0)) "defensive copy" 0.25 d2.epsilons.(0)

let test_exact_frequency_owner () =
  let d = small_dataset 12 in
  (match Dataset.exact_frequency_owner d ~frequency:1 with
  | Some j -> check_int "found owner has that frequency" 1 (Dataset.frequency d j)
  | None -> Alcotest.fail "a Zipf dataset always has singletons");
  check_bool "impossible frequency" true (Dataset.exact_frequency_owner d ~frequency:9999 = None)

let test_csv_roundtrip () =
  let d =
    Dataset.with_epsilons (small_dataset 13)
      (Array.init 100 (fun j -> float_of_int j /. 100.0))
  in
  let d2 = Dataset.of_csv (Dataset.to_csv d) in
  check_int "providers" d.providers d2.providers;
  check_int "owners" d.owners d2.owners;
  check_bool "membership equal" true (Bitmatrix.equal d.membership d2.membership);
  Array.iteri
    (fun j e -> check_bool (Printf.sprintf "eps %d" j) true (Float.abs (e -. d2.epsilons.(j)) < 1e-6))
    d.epsilons

let test_csv_rejects_garbage () =
  Alcotest.check_raises "empty" (Failure "Dataset.of_csv: bad header") (fun () ->
      ignore (Dataset.of_csv "nonsense"))

let test_stats_summary_runs () =
  let d = small_dataset 14 in
  check_bool "non-empty summary" true (String.length (Dataset.stats_summary d) > 10)

let test_generation_deterministic () =
  let a = small_dataset 15 and b = small_dataset 15 in
  check_bool "same seed, same matrix" true (Bitmatrix.equal a.membership b.membership)

let test_validation () =
  Alcotest.check_raises "empty network" (Invalid_argument "Dataset.generate: empty network")
    (fun () -> ignore (Dataset.generate (Rng.create 1) ~providers:0 ~owners:5))

let () =
  Alcotest.run "dataset"
    [
      ( "generate",
        [
          Alcotest.test_case "dimensions" `Quick test_dimensions;
          Alcotest.test_case "every owner present" `Quick test_every_owner_present;
          Alcotest.test_case "frequency cap" `Quick test_frequency_cap;
          Alcotest.test_case "zipf shape" `Quick test_zipf_shape;
          Alcotest.test_case "planted commons" `Quick test_planted_commons;
          Alcotest.test_case "sigma consistency" `Quick test_sigma_consistency;
          Alcotest.test_case "member agrees with matrix" `Quick test_member_agrees_with_matrix;
          Alcotest.test_case "deterministic" `Quick test_generation_deterministic;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "epsilons",
        [
          Alcotest.test_case "helpers" `Quick test_epsilon_helpers;
          Alcotest.test_case "defensive copies" `Quick test_with_epsilons_copies;
        ] );
      ( "tools",
        [
          Alcotest.test_case "exact frequency lookup" `Quick test_exact_frequency_owner;
          Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "csv rejects garbage" `Quick test_csv_rejects_garbage;
          Alcotest.test_case "stats summary" `Quick test_stats_summary_runs;
        ] );
    ]
