test/test_mpc.ml: Alcotest Array Circuit Cost Eppi_circuit Eppi_mpc Eppi_prelude Eppi_secretshare Eppi_sfdl Float Garbled Gmw Int64 List Printf QCheck QCheck_alcotest Rng Test
