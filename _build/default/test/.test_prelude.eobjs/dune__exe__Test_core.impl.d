test/test_core.ml: Alcotest Analysis Array Attack Bitmatrix Bitvec Construct Eppi Eppi_prelude Float Fun Index List Metrics Mixing Policy Printf Publish QCheck QCheck_alcotest Rng Stats Test
