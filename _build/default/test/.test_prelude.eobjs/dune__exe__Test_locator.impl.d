test/test_locator.ml: Alcotest Anonymity Eppi Eppi_locator Eppi_prelude Float List Locator Option Printf Rng
