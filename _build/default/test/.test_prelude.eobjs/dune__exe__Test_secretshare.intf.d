test/test_secretshare.mli:
