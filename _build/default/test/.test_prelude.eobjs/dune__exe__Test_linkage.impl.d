test/test_linkage.ml: Alcotest Array Bitmatrix Bloom Demographic Eppi Eppi_linkage Eppi_prelude Float Gen Hashtbl Linkage List Printf QCheck QCheck_alcotest Rng Test Text
