test/test_simnet.ml: Alcotest Array Eppi_simnet Float Gen Heap List QCheck QCheck_alcotest Simnet Test
