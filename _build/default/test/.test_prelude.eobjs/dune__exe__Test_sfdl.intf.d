test/test_sfdl.mli:
