test/test_integration.ml: Alcotest Array Bitmatrix Eppi Eppi_dataset Eppi_grouping Eppi_locator Eppi_mpc Eppi_prelude Eppi_protocol Eppi_sfdl Eppi_simnet Fun List Printf Rng
