test/test_grouping.mli:
