test/test_dataset.ml: Alcotest Array Bitmatrix Dataset Eppi_dataset Eppi_prelude Float Hashtbl Option Printf Rng String
