test/test_prelude.ml: Alcotest Array Bitmatrix Bitvec Eppi_prelude Float Fun Gen Hashtbl Int64 List Modarith Printf QCheck QCheck_alcotest Rng Sampling Stats String Table Test
