test/test_secretshare.ml: Additive Alcotest Array Eppi_prelude Eppi_secretshare Float List Modarith Printf QCheck QCheck_alcotest Rng Shamir Test
