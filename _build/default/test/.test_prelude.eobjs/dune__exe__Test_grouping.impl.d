test/test_grouping.ml: Alcotest Array Bitmatrix Eppi Eppi_grouping Eppi_prelude Float Grouping List Printf QCheck QCheck_alcotest Rng Test
