test/test_circuit.ml: Alcotest Array Circuit Eppi_circuit Fixedpoint Float List Printf QCheck QCheck_alcotest Test Word
