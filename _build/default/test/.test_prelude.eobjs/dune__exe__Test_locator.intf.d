test/test_locator.mli:
