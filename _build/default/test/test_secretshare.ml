(* Tests for additive (c,c) and Shamir (k,n) secret sharing: Theorem 4.1's
   recoverability and secrecy, plus the additive homomorphism SecSumShare
   relies on. *)

open Eppi_prelude
open Eppi_secretshare

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let q101 = Modarith.modulus 101

let test_additive_roundtrip () =
  let rng = Rng.create 1 in
  for v = 0 to 100 do
    let shares = Additive.share rng ~q:q101 ~c:5 v in
    check_int "share count" 5 (Array.length shares);
    check_int (Printf.sprintf "reconstruct %d" v) v (Additive.reconstruct ~q:q101 shares)
  done

let test_additive_single_share () =
  let rng = Rng.create 2 in
  let shares = Additive.share rng ~q:q101 ~c:1 42 in
  check_int "degenerate c=1" 42 (Additive.reconstruct ~q:q101 shares)

let test_additive_share_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 100 do
    let shares = Additive.share rng ~q:q101 ~c:3 55 in
    Array.iter (fun s -> check_bool "canonical residue" true (s >= 0 && s < 101)) shares
  done

let test_additive_rejects_bad_c () =
  let rng = Rng.create 4 in
  Alcotest.check_raises "c=0" (Invalid_argument "Additive.share: need at least one share")
    (fun () -> ignore (Additive.share rng ~q:q101 ~c:0 5))

let test_additive_homomorphism () =
  let rng = Rng.create 5 in
  for _ = 1 to 50 do
    let a = Rng.int rng 101 and b = Rng.int rng 101 in
    let sa = Additive.share rng ~q:q101 ~c:4 a in
    let sb = Additive.share rng ~q:q101 ~c:4 b in
    let sum = Additive.add ~q:q101 sa sb in
    check_int "share-wise add = sum" (Modarith.add q101 a b) (Additive.reconstruct ~q:q101 sum)
  done

let test_additive_add_into () =
  let rng = Rng.create 6 in
  let acc = Additive.share rng ~q:q101 ~c:3 10 in
  let other = Additive.share rng ~q:q101 ~c:3 20 in
  Additive.add_into ~q:q101 ~acc other;
  check_int "in-place accumulate" 30 (Additive.reconstruct ~q:q101 acc)

let test_additive_rerandomize () =
  let rng = Rng.create 7 in
  let shares = Additive.share rng ~q:q101 ~c:3 77 in
  let fresh = Additive.rerandomize rng ~q:q101 shares in
  check_int "same secret" 77 (Additive.reconstruct ~q:q101 fresh);
  check_bool "shares actually changed" true (fresh <> shares)

let test_additive_secrecy_distribution () =
  (* Knowing c-1 shares must leave the secret uniform: for a fixed secret the
     first share is uniform over Z_q regardless of the secret's value. *)
  let q = Modarith.modulus 11 in
  let trials = 40_000 in
  let histogram secret =
    let rng = Rng.create 97 in
    let counts = Array.make 11 0 in
    for _ = 1 to trials do
      let shares = Additive.share rng ~q ~c:3 secret in
      counts.(shares.(0)) <- counts.(shares.(0)) + 1
    done;
    counts
  in
  let h0 = histogram 0 and h7 = histogram 7 in
  let expected = float_of_int trials /. 11.0 in
  Array.iteri
    (fun i c ->
      check_bool
        (Printf.sprintf "uniform bucket %d (secret 0)" i)
        true
        (Float.abs (float_of_int c -. expected) < 6.0 *. sqrt expected);
      check_bool
        (Printf.sprintf "uniform bucket %d (secret 7)" i)
        true
        (Float.abs (float_of_int h7.(i) -. expected) < 6.0 *. sqrt expected))
    h0

let test_additive_partial_sum_independent_of_secret () =
  (* The sum of any c-1 shares is also uniform: its distribution cannot
     depend on the secret (Theorem 4.1 secrecy). Compare first moments. *)
  let q = Modarith.modulus 13 in
  let trials = 30_000 in
  let mean_partial secret =
    let rng = Rng.create 31 in
    let acc = ref 0 in
    for _ = 1 to trials do
      let shares = Additive.share rng ~q ~c:4 secret in
      acc := !acc + Modarith.add q shares.(1) (Modarith.add q shares.(2) shares.(3))
    done;
    float_of_int !acc /. float_of_int trials
  in
  let m0 = mean_partial 0 and m9 = mean_partial 9 in
  check_bool "partial-view means agree across secrets" true (Float.abs (m0 -. m9) < 0.15)

(* ---------- Shamir ---------- *)

let p257 = Modarith.modulus 257

let test_shamir_roundtrip () =
  let rng = Rng.create 11 in
  let scheme = Shamir.create rng ~p:p257 ~k:3 ~n:6 in
  for v = 0 to 50 do
    let shares = Shamir.share scheme rng v in
    check_int "all shares reconstruct" v (Shamir.reconstruct ~p:p257 shares)
  done

let test_shamir_threshold_subsets () =
  let rng = Rng.create 12 in
  let scheme = Shamir.create rng ~p:p257 ~k:3 ~n:5 in
  let shares = Shamir.share scheme rng 123 in
  let subsets = [ [ 0; 1; 2 ]; [ 0; 2; 4 ]; [ 1; 3; 4 ]; [ 2; 3; 4 ] ] in
  List.iter
    (fun idxs ->
      let subset = Array.of_list (List.map (fun i -> shares.(i)) idxs) in
      check_int "3-subset reconstructs" 123 (Shamir.reconstruct ~p:p257 subset))
    subsets

let test_shamir_below_threshold_uniform () =
  (* With k-1 shares the secret stays hidden: the value of share 1 is
     uniform whatever the secret. *)
  let p = Modarith.modulus 17 in
  let trials = 30_000 in
  let histogram secret =
    let rng = Rng.create 13 in
    let scheme = Shamir.create rng ~p ~k:2 ~n:3 in
    let counts = Array.make 17 0 in
    for _ = 1 to trials do
      let shares = Shamir.share scheme rng secret in
      let _, y = shares.(0) in
      counts.(y) <- counts.(y) + 1
    done;
    counts
  in
  let h = histogram 5 in
  let expected = float_of_int trials /. 17.0 in
  Array.iteri
    (fun i c ->
      check_bool
        (Printf.sprintf "uniform bucket %d" i)
        true
        (Float.abs (float_of_int c -. expected) < 6.0 *. sqrt expected))
    h

let test_shamir_validation () =
  let rng = Rng.create 14 in
  Alcotest.check_raises "composite modulus"
    (Invalid_argument "Shamir.create: modulus must be prime") (fun () ->
      ignore (Shamir.create rng ~p:(Modarith.modulus 100) ~k:2 ~n:3));
  Alcotest.check_raises "k > n" (Invalid_argument "Shamir.create: need 1 <= k <= n < p")
    (fun () -> ignore (Shamir.create rng ~p:p257 ~k:5 ~n:3))

let test_shamir_agrees_with_additive_semantics () =
  (* Cross-check: both schemes are exact on the full share set. *)
  let rng = Rng.create 15 in
  let scheme = Shamir.create rng ~p:p257 ~k:4 ~n:4 in
  for _ = 1 to 30 do
    let v = Rng.int rng 257 in
    let add_shares = Additive.share rng ~q:p257 ~c:4 v in
    let sh_shares = Shamir.share scheme rng v in
    check_int "additive" v (Additive.reconstruct ~q:p257 add_shares);
    check_int "shamir" v (Shamir.reconstruct ~p:p257 sh_shares)
  done

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"additive reconstruct inverse of share" ~count:500
      (quad small_int (int_range 2 4001) (int_range 1 10) int)
      (fun (seed, q, c, v) ->
        let q = Modarith.modulus q in
        let rng = Rng.create seed in
        let v = Modarith.reduce q v in
        Additive.reconstruct ~q (Additive.share rng ~q ~c v) = v);
    Test.make ~name:"additive homomorphism" ~count:300
      (quad small_int (int_range 2 4001) int int)
      (fun (seed, q, a, b) ->
        let q = Modarith.modulus q in
        let rng = Rng.create seed in
        let a = Modarith.reduce q a and b = Modarith.reduce q b in
        let sum = Additive.add ~q (Additive.share rng ~q ~c:3 a) (Additive.share rng ~q ~c:3 b) in
        Additive.reconstruct ~q sum = Modarith.add q a b);
    Test.make ~name:"shamir full-set reconstruction" ~count:200
      (triple small_int (int_range 1 5) int)
      (fun (seed, k, v) ->
        let rng = Rng.create seed in
        let n = k + 2 in
        let scheme = Shamir.create rng ~p:p257 ~k ~n in
        let v = Modarith.reduce p257 v in
        Shamir.reconstruct ~p:p257 (Shamir.share scheme rng v) = v);
  ]

let () =
  Alcotest.run "secretshare"
    [
      ( "additive",
        [
          Alcotest.test_case "roundtrip" `Quick test_additive_roundtrip;
          Alcotest.test_case "single share" `Quick test_additive_single_share;
          Alcotest.test_case "share range" `Quick test_additive_share_range;
          Alcotest.test_case "rejects bad c" `Quick test_additive_rejects_bad_c;
          Alcotest.test_case "homomorphism" `Quick test_additive_homomorphism;
          Alcotest.test_case "add_into" `Quick test_additive_add_into;
          Alcotest.test_case "rerandomize" `Quick test_additive_rerandomize;
          Alcotest.test_case "secrecy distribution" `Quick test_additive_secrecy_distribution;
          Alcotest.test_case "partial sums secret-independent" `Quick
            test_additive_partial_sum_independent_of_secret;
        ] );
      ( "shamir",
        [
          Alcotest.test_case "roundtrip" `Quick test_shamir_roundtrip;
          Alcotest.test_case "threshold subsets" `Quick test_shamir_threshold_subsets;
          Alcotest.test_case "below threshold uniform" `Quick test_shamir_below_threshold_uniform;
          Alcotest.test_case "validation" `Quick test_shamir_validation;
          Alcotest.test_case "cross-check with additive" `Quick
            test_shamir_agrees_with_additive_semantics;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
